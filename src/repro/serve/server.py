"""The archive server: asyncio front end, pooled decodes, shared cache.

Concurrency model, in one paragraph: a single event-loop thread owns
all request parsing, routing, and coalescing bookkeeping; numpy block
decodes run on a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
via ``loop.run_in_executor`` so the loop never blocks on kernel work.
The decoded-block cache (:class:`~repro.api.cache.DecodedBlockCache`)
is keyed by ``(archive, block, selection.cache_token)`` — the codec is
deliberately *not* part of the key because archives and decodes are
byte-identical across kernels (the repo-wide kernel contract), so a
numpy-decoded block may serve a request that asked for the python
kernel.  Concurrent misses of one key collapse into a single decode
through :class:`~repro.api.cache.SingleFlight`: the leader runs the
decode on the pool, every follower ``await``s the leader's future on
the event loop — followers never occupy a pool thread, so a 32-client
burst on one block costs one decode and cannot starve the pool.
"""

from __future__ import annotations

import asyncio
import re
import threading
import time
from bisect import bisect_left, bisect_right
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from ..api.cache import DecodedBlockCache, SingleFlight, decoded_nbytes
from ..api.dataset import SAGeDataset
from ..api.options import EngineOptions
from ..api.sinks import result_info
from ..core.selection import StreamSelection
from ..genomics import fastq
from .http import (HTTPError, Request, Response, error_response,
                   read_request, sage_error_boundary)
from .stats import ServerStats

__all__ = ["ArchiveServer", "DEFAULT_CACHE_BYTES", "REQUEST_OPTION_KEYS"]

DEFAULT_CACHE_BYTES = 64 << 20

#: EngineOptions fields a single request may override.  Everything else
#: (level, with_quality, format_version, ...) shapes *encoding* or the
#: session itself and stays server-side.
REQUEST_OPTION_KEYS = frozenset({
    "codec", "mapper", "workers", "backend", "prefetch", "on_error",
    "block_retries", "block_timeout", "streams",
})

_BLOCK_PATH = re.compile(r"^/block/(\d+)$")
_READS_PATH = re.compile(r"^/reads/(\d+)-(\d+)$")


def request_options(base: EngineOptions, overrides: dict) -> EngineOptions:
    """Apply a request's option overrides to the session baseline.

    Unknown keys and invalid values are client errors (400), surfaced
    through the facade's own validation — ``EngineOptions.replace``
    re-runs ``__post_init__`` on the merged options.
    """
    if not overrides:
        return base
    unknown = sorted(set(overrides) - REQUEST_OPTION_KEYS)
    if unknown:
        raise HTTPError(
            400, f"unknown option(s) {', '.join(unknown)}; requests may "
                 f"override: {', '.join(sorted(REQUEST_OPTION_KEYS))}")
    try:
        return base.replace(**overrides)
    except (TypeError, ValueError) as exc:
        raise HTTPError(400, f"invalid options: {exc}") from exc


class _ServedArchive:
    """One archive under service: its session plus the read-index map."""

    def __init__(self, name: str, path: Path,
                 dataset: SAGeDataset) -> None:
        self.name = name
        self.path = path
        self.dataset = dataset
        # Cumulative read offsets per block: read_offsets[i] is the
        # global index of block i's first read, with a final sentinel
        # equal to n_reads.  This is the /reads/{a}-{b} lookup table
        # and the FASTQ numbering base that makes block-by-block
        # serving byte-identical to a streaming to_fastq pass.
        offsets = [0]
        for entry in dataset.archive.block_index():
            offsets.append(offsets[-1] + entry.n_reads)
        self.read_offsets = offsets

    @property
    def n_blocks(self) -> int:
        return self.dataset.archive.n_blocks

    @property
    def n_reads(self) -> int:
        return self.read_offsets[-1]

    def decode(self, index: int, selection: StreamSelection,
               options: EngineOptions):
        """Decode one block under ``selection`` (runs on a pool thread).

        The per-request kernel rides the ``decompress_block`` call
        itself; the parsed block is released afterwards because the
        decoded form now lives in the server cache and the archive's
        parsed-block slot would otherwise grow unbounded.
        """
        try:
            return self.dataset.decompressor().decompress_block(
                index,
                codec=options.codec,
                select=None if selection.is_all else selection)
        finally:
            self.dataset.archive.release_block(index)


def _inspect_sync(served: _ServedArchive) -> dict:
    """Block-level metadata for /inspect (runs on a pool thread)."""
    archive = served.dataset.archive
    blocks = []
    for i, entry in enumerate(archive.block_index()):
        blk = archive.block(i)
        blocks.append({
            "index": i,
            "n_reads": entry.n_reads,
            "bytes": entry.nbytes,
            "offset": entry.offset,
            "crc32": entry.crc32,
            "decoded_nbytes_estimate": blk.decoded_nbytes_estimate(),
            "first_read": served.read_offsets[i],
        })
        archive.release_block(i)
    return {
        "archive": served.name,
        "path": str(served.path),
        "format_version": archive.source_version,
        "n_blocks": archive.n_blocks,
        "n_reads": served.n_reads,
        "block_reads": archive.block_reads,
        "decoded_nbytes_estimate_total":
            sum(b["decoded_nbytes_estimate"] for b in blocks),
        "blocks": blocks,
    }


def _analyze_sync(served: _ServedArchive, sink_names: list,
                  options: EngineOptions) -> dict:
    """One streaming analysis pass (runs on a pool thread)."""
    try:
        pipeline = served.dataset.pipe(*sink_names)
    except (TypeError, ValueError) as exc:
        raise HTTPError(400, str(exc)) from exc
    results = pipeline.run(options=options)
    stats = pipeline.stats
    return {
        "archive": served.name,
        "results": {name: result_info(result)
                    for name, result in zip(sink_names, results)},
        "stream": {"blocks": stats.blocks,
                   "peak_inflight_blocks": stats.peak_inflight,
                   "bytes_shipped": stats.bytes_shipped,
                   "streams_decoded": dict(stats.streams_decoded)},
    }


def _reads_payload(read_set, base: int) -> list:
    """JSON rendering of decoded reads with global indices."""
    return [{"index": base + i,
             "header": read.header or f"read{base + i}",
             "sequence": read.text,
             "quality": read.quality_text
             if read.quality is not None else None}
            for i, read in enumerate(read_set)]


def _render_fastq(read_set, base: int) -> str:
    """FASTQ text with the same global numbering FastqSink emits."""
    return "".join(fastq.format_read(read, base + i)
                   for i, read in enumerate(read_set))


class ArchiveServer:
    """Serve one or more SAGe archives over HTTP.

    ``archives`` is a list of paths (or ``name=path`` strings to pick
    the served name explicitly; the default name is the file stem).
    The server owns its datasets: :meth:`close` closes them.

    Endpoints::

        GET  /archives            served archives + shape metadata
        GET  /inspect?archive=A   per-block index incl. decoded-size estimates
        GET  /block/{i}           one decoded block (FASTQ; ?format=json)
        GET  /reads/{a}-{b}       global read range [a, b) across blocks
        POST /analyze             {"archive": A, "sinks": [...], "options": {}}
        GET  /stats               ServerStats + cache counters
        POST /cache/clear         drop cached decoded blocks

    ``/block`` and ``/reads`` accept ``?streams=`` (a
    :meth:`StreamSelection.from_query` spec) and ``?codec=``; POST
    bodies may carry an ``options`` object whitelisted by
    :data:`REQUEST_OPTION_KEYS`.
    """

    def __init__(self, archives, *, options: EngineOptions | None = None,
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 decode_threads: int = 4, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.options = options if options is not None else EngineOptions()
        self.host = host
        self.port = port
        self.cache = DecodedBlockCache(cache_bytes)
        self.stats = ServerStats()
        self._flights = SingleFlight()
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, decode_threads),
            thread_name_prefix="sage-serve")
        self._served: dict[str, _ServedArchive] = {}
        try:
            for spec in archives:
                name, _, path_text = str(spec).rpartition("=")
                path = Path(path_text)
                name = name or path.stem
                if name in self._served:
                    raise ValueError(
                        f"duplicate served archive name {name!r}; "
                        f"disambiguate with name=path")
                dataset = SAGeDataset.open(path, options=self.options)
                self._served[name] = _ServedArchive(name, path, dataset)
            if not self._served:
                raise ValueError("no archives to serve")
        except BaseException:
            self._shutdown_resources()
            raise
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._stop_event: asyncio.Event | None = None
        self._conn_tasks: set = set()
        self._closed = False
        self.final_stats: dict | None = None

    @property
    def archive_names(self) -> tuple:
        """The served archive names, sorted."""
        return tuple(sorted(self._served))

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ArchiveServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def start(self) -> int:
        """Run the server on a background thread; returns the bound port."""
        if self._thread is not None:
            return self.port
        if self._closed:
            raise ValueError("server is closed")
        self._thread = threading.Thread(target=self._thread_main,
                                        name="sage-serve-loop", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            self._startup_error = None
            raise error
        return self.port

    def close(self) -> dict:
        """Stop serving and release every resource; returns final stats.

        Idempotent and safe from any thread.  Shutdown order matters:
        stop the loop (no new requests), drain the pool (in-flight
        decodes finish), snapshot stats, then close the datasets — so
        no decode ever races a closing archive from inside the server.
        """
        if self._closed:
            return self.final_stats or {}
        self._closed = True
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:        # loop already gone
                pass
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._pool.shutdown(wait=True)
        self.final_stats = self.stats.to_dict(self.cache.stats)
        self._shutdown_resources()
        return self.final_stats

    def _shutdown_resources(self) -> None:
        self._pool.shutdown(wait=True)
        for served in self._served.values():
            served.dataset.close()
        self.cache.clear()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:   # startup failures surface in start()
            self._startup_error = exc
        finally:
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(self._on_connection,
                                            host=self.host, port=self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)
            self._loop = None

    # -- connection handling -------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                request = await read_request(reader)
            except HTTPError as exc:
                writer.write(error_response(exc).render(keep_alive=False))
                await writer.drain()
                return
            if request is None:
                return
            response = await self._dispatch(request)
            try:
                writer.write(response.render(keep_alive=request.keep_alive))
                await writer.drain()
            except ConnectionError:
                return
            if not request.keep_alive:
                return

    async def _dispatch(self, request: Request) -> Response:
        endpoint, handler, args = self._route(request)
        self.stats.begin_request()
        started = time.perf_counter()
        failed = False
        try:
            return await handler(request, *args)
        except HTTPError as exc:
            failed = True
            return error_response(exc)
        except Exception as exc:   # the never-crash floor of the server
            failed = True
            return error_response(
                HTTPError(500, f"internal error: {type(exc).__name__}: "
                               f"{exc}"))
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1e3
            self.stats.end_request(endpoint, elapsed_ms, error=failed)

    def _route(self, request: Request):
        """Resolve ``(endpoint_label, handler, extra_args)``."""
        path = request.path
        if path == "/archives":
            return "/archives", self._expect(
                request, "GET", self._handle_archives), ()
        if path == "/inspect":
            return "/inspect", self._expect(
                request, "GET", self._handle_inspect), ()
        match = _BLOCK_PATH.match(path)
        if match:
            return "/block", self._expect(
                request, "GET", self._handle_block), (int(match.group(1)),)
        match = _READS_PATH.match(path)
        if match:
            return "/reads", self._expect(
                request, "GET", self._handle_reads), (
                    int(match.group(1)), int(match.group(2)))
        if path == "/analyze":
            return "/analyze", self._expect(
                request, "POST", self._handle_analyze), ()
        if path == "/stats":
            return "/stats", self._expect(
                request, "GET", self._handle_stats), ()
        if path == "/cache/clear":
            return "/cache/clear", self._expect(
                request, "POST", self._handle_cache_clear), ()
        # One shared label keeps /stats from growing a latency window
        # per mistyped path.
        return "(unknown)", self._handle_not_found, ()

    @staticmethod
    def _expect(request: Request, method: str, handler):
        if request.method != method:
            return ArchiveServer._method_not_allowed
        return handler

    @staticmethod
    async def _method_not_allowed(request: Request, *args) -> Response:
        raise HTTPError(405, f"{request.method} not allowed on "
                             f"{request.path}")

    @staticmethod
    @sage_error_boundary
    async def _handle_not_found(request: Request) -> Response:
        raise HTTPError(404, f"no such endpoint: {request.path}")

    # -- shared request plumbing ---------------------------------------

    def _served_for(self, request: Request) -> _ServedArchive:
        name = request.query.get("archive")
        if name is None:
            if len(self._served) == 1:
                return next(iter(self._served.values()))
            raise HTTPError(400, "multiple archives are served; pick one "
                                 "with ?archive=NAME",
                            archives=sorted(self._served))
        served = self._served.get(name)
        if served is None:
            raise HTTPError(404, f"unknown archive {name!r}",
                            archives=sorted(self._served))
        return served

    def _selection_of(self, request: Request) -> StreamSelection:
        spec = request.query.get("streams")
        if spec is None:
            return StreamSelection.all_streams()
        try:
            return StreamSelection.from_query(spec)
        except ValueError as exc:
            raise HTTPError(400, str(exc)) from exc

    def _options_of(self, request: Request) -> EngineOptions:
        overrides = {}
        if "codec" in request.query:
            overrides["codec"] = request.query["codec"]
        return request_options(self.options, overrides)

    async def _decoded_block(self, served: _ServedArchive, index: int,
                             selection: StreamSelection,
                             options: EngineOptions):
        """The cache + coalescing + pooled-decode core of the server."""
        key = (served.name, index, selection.cache_token)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        future, leader = self._flights.begin(key)
        if not leader:
            # Join the in-flight decode without holding a pool thread.
            self.stats.coalesced += 1
            return await asyncio.wrap_future(future)
        loop = asyncio.get_running_loop()
        try:
            read_set = await loop.run_in_executor(
                self._pool, served.decode, index, selection, options)
        except BaseException as exc:
            # Failures wake every follower and are not cached: the
            # next request for this block retries the decode.
            self._flights.reject(key, exc)
            raise
        self.stats.decodes += 1
        self.cache.put(key, read_set, decoded_nbytes(read_set))
        self._flights.resolve(key, read_set)
        return read_set

    # -- handlers (each maps SAGeError via the boundary: SGL007) -------

    @sage_error_boundary
    async def _handle_archives(self, request: Request) -> Response:
        listing = [{"name": served.name,
                    "path": str(served.path),
                    "n_blocks": served.n_blocks,
                    "n_reads": served.n_reads,
                    "format_version":
                        served.dataset.archive.source_version,
                    "block_reads": served.dataset.archive.block_reads}
                   for served in self._served.values()]
        return Response.json({"archives":
                              sorted(listing, key=lambda a: a["name"])})

    @sage_error_boundary
    async def _handle_inspect(self, request: Request) -> Response:
        served = self._served_for(request)
        loop = asyncio.get_running_loop()
        info = await loop.run_in_executor(self._pool, _inspect_sync, served)
        return Response.json(info)

    @sage_error_boundary
    async def _handle_block(self, request: Request,
                            index: int) -> Response:
        served = self._served_for(request)
        if not 0 <= index < served.n_blocks:
            raise HTTPError(404, f"block {index} out of range (archive "
                                 f"{served.name!r} has {served.n_blocks} "
                                 f"blocks)")
        selection = self._selection_of(request)
        read_set = await self._decoded_block(
            served, index, selection, self._options_of(request))
        base = served.read_offsets[index]
        if request.query.get("format") == "json":
            return Response.json({"archive": served.name, "block": index,
                                  "first_read": base,
                                  "reads": _reads_payload(read_set, base)})
        return Response.text(_render_fastq(read_set, base))

    @sage_error_boundary
    async def _handle_reads(self, request: Request, start: int,
                            stop: int) -> Response:
        served = self._served_for(request)
        if not 0 <= start < stop <= served.n_reads:
            raise HTTPError(
                400, f"read range [{start}, {stop}) is invalid for "
                     f"archive {served.name!r} with {served.n_reads} "
                     f"reads")
        selection = self._selection_of(request)
        options = self._options_of(request)
        offsets = served.read_offsets
        first = bisect_right(offsets, start) - 1
        last = bisect_left(offsets, stop)      # exclusive block bound
        records: list[str] = []
        for block_index in range(first, last):
            read_set = await self._decoded_block(
                served, block_index, selection, options)
            base = offsets[block_index]
            lo = max(start, base) - base
            hi = min(stop, offsets[block_index + 1]) - base
            records.extend(
                fastq.format_read(read_set[i], base + i)
                for i in range(lo, hi))
        return Response.text("".join(records))

    @sage_error_boundary
    async def _handle_analyze(self, request: Request) -> Response:
        payload = request.json()
        name = payload.get("archive")
        if name is not None:
            request = Request(method=request.method, path=request.path,
                              query={**request.query,
                                     "archive": str(name)})
        served = self._served_for(request)
        sink_names = payload.get("sinks", ["property"])
        if (not isinstance(sink_names, list) or not sink_names
                or not all(isinstance(s, str) and s for s in sink_names)):
            raise HTTPError(400, "sinks must be a non-empty list of "
                                 "sink names")
        if len(set(sink_names)) != len(sink_names):
            raise HTTPError(400, "duplicate sink names")
        overrides = payload.get("options", {})
        if not isinstance(overrides, dict):
            raise HTTPError(400, "options must be an object")
        options = request_options(self.options, overrides)
        loop = asyncio.get_running_loop()
        info = await loop.run_in_executor(
            self._pool, _analyze_sync, served, sink_names, options)
        return Response.json(info)

    @sage_error_boundary
    async def _handle_stats(self, request: Request) -> Response:
        return Response.json(self.stats.to_dict(self.cache.stats))

    @sage_error_boundary
    async def _handle_cache_clear(self, request: Request) -> Response:
        dropped = self.cache.clear()
        return Response.json({"cleared": dropped})
