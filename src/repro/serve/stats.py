"""Server-side observability: latency percentiles and work counters.

All mutation happens on the server's event-loop thread, so the
structures here are deliberately lock-free; readers that snapshot from
other threads (the shutdown path) only do so after the loop has
stopped.  Cache statistics live with the cache itself
(:class:`repro.api.cache.CacheStats`) and are merged into
:meth:`ServerStats.to_dict` at render time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["LatencyWindow", "ServerStats"]

#: Keep at most this many samples per endpoint; the window then behaves
#: as "the most recent N requests", which is what live p99 should mean.
_WINDOW_SAMPLES = 4096


class LatencyWindow:
    """Recent request latencies for one endpoint, in milliseconds."""

    def __init__(self) -> None:
        self.count = 0
        self.total_ms = 0.0
        self._samples: list[float] = []

    def record(self, elapsed_ms: float) -> None:
        self.count += 1
        self.total_ms += elapsed_ms
        self._samples.append(elapsed_ms)
        if len(self._samples) > _WINDOW_SAMPLES:
            del self._samples[:len(self._samples) - _WINDOW_SAMPLES]

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (0..100) of the retained window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1,
                   max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def to_dict(self) -> dict:
        return {"count": self.count,
                "p50_ms": round(self.percentile(50), 3),
                "p99_ms": round(self.percentile(99), 3),
                "mean_ms": round(self.total_ms / self.count, 3)
                if self.count else 0.0}


@dataclass
class ServerStats:
    """One server's lifetime counters, surfaced at ``/stats``."""

    started: float = field(default_factory=time.monotonic)
    requests: int = 0
    errors: int = 0
    #: Block decodes actually executed (cache misses that led work).
    decodes: int = 0
    #: Requests that joined another request's in-flight decode.
    coalesced: int = 0
    inflight: int = 0
    inflight_peak: int = 0
    endpoints: dict[str, LatencyWindow] = field(default_factory=dict)

    def begin_request(self) -> None:
        self.inflight += 1
        self.inflight_peak = max(self.inflight_peak, self.inflight)

    def end_request(self, endpoint: str, elapsed_ms: float,
                    *, error: bool = False) -> None:
        self.inflight -= 1
        self.requests += 1
        if error:
            self.errors += 1
        window = self.endpoints.get(endpoint)
        if window is None:
            window = self.endpoints[endpoint] = LatencyWindow()
        window.record(elapsed_ms)

    def to_dict(self, cache_stats=None) -> dict:
        payload = {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "requests": self.requests,
            "errors": self.errors,
            "decodes": self.decodes,
            "coalesced": self.coalesced,
            "inflight": self.inflight,
            "inflight_peak": self.inflight_peak,
            "endpoints": {name: window.to_dict()
                          for name, window in sorted(self.endpoints.items())},
        }
        if cache_stats is not None:
            payload["cache"] = cache_stats.to_dict()
        return payload

    def render(self, cache_stats=None) -> str:
        """Human-readable shutdown summary."""
        info = self.to_dict(cache_stats)
        lines = [f"requests: {info['requests']} "
                 f"(errors {info['errors']}, inflight peak "
                 f"{info['inflight_peak']})",
                 f"decodes: {info['decodes']} "
                 f"(coalesced {info['coalesced']})"]
        if "cache" in info:
            cache = info["cache"]
            lines.append(
                f"cache: {cache['hits']} hits / {cache['misses']} misses "
                f"(rate {cache['hit_rate']:.2%}, "
                f"evictions {cache['evictions']})")
        for name, window in info["endpoints"].items():
            lines.append(f"  {name}: n={window['count']} "
                         f"p50={window['p50_ms']}ms "
                         f"p99={window['p99_ms']}ms")
        return "\n".join(lines)
