"""repro — reproduction of SAGe (HPCA 2026).

SAGe is an algorithm-architecture co-design for highly-compressed storage
and high-performance access of genomic sequence data, mitigating the data
preparation bottleneck in genome sequence analysis.  This package provides
the full system: the SAGe codec and hardware model, the genomic data
substrate, baseline compressors, SSD/DRAM/interconnect models, and the
end-to-end pipeline evaluation used to regenerate the paper's figures.

Quickstart::

    from repro import genomics, core
    sim = genomics.datasets.generate("RS2", base_genome=20_000)
    archive = core.compress(sim.read_set, sim.reference)
    reads = core.decompress(archive)
"""

from . import analysis, baselines, core, genomics, hardware, mapping, pipeline
from .core import (OptLevel, SAGeArchive, SAGeCompressor, SAGeConfig,
                   SAGeDecompressor, compress, decompress)

__version__ = "1.0.0"

__all__ = [
    "analysis", "baselines", "core", "genomics", "hardware", "mapping",
    "pipeline", "OptLevel", "SAGeArchive", "SAGeCompressor", "SAGeConfig",
    "SAGeDecompressor", "compress", "decompress", "__version__",
]
