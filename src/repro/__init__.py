"""repro — reproduction of SAGe (HPCA 2026).

SAGe is an algorithm-architecture co-design for highly-compressed storage
and high-performance access of genomic sequence data, mitigating the data
preparation bottleneck in genome sequence analysis.  This package provides
the full system: the SAGe codec and hardware model, the genomic data
substrate, baseline compressors, SSD/DRAM/interconnect models, and the
end-to-end pipeline evaluation used to regenerate the paper's figures.

Quickstart — the :class:`SAGeDataset` facade is the one API over
archives, streams, sinks and engine options::

    from repro import EngineOptions, SAGeDataset, genomics

    sim = genomics.datasets.generate("RS2", base_genome=20_000)
    options = EngineOptions(block_reads=4096, workers=4)
    dataset = SAGeDataset.from_fastq(sim.read_set,
                                     reference=sim.reference,
                                     options=options)
    dataset.save("reads.sage")

    with SAGeDataset.open("reads.sage", options=options) as ds:
        report, rate = ds.pipe("property").pipe("mapping-rate").run()
        reads = ds.read_set()            # lossless round trip
"""

from . import analysis, baselines, core, genomics, hardware, mapping, pipeline
from . import api
from .api import (EngineOptions, Pipeline, SAGeDataset, available_sinks,
                  make_sink, register_sink)
from .core import (OptLevel, SAGeArchive, SAGeCompressor, SAGeConfig,
                   SAGeDecompressor, compress, decompress)

__version__ = "1.1.0"

__all__ = [
    "analysis", "api", "baselines", "core", "genomics", "hardware",
    "mapping", "pipeline", "EngineOptions", "Pipeline", "SAGeDataset",
    "available_sinks", "make_sink", "register_sink", "OptLevel",
    "SAGeArchive", "SAGeCompressor", "SAGeConfig", "SAGeDecompressor",
    "compress", "decompress", "__version__",
]
