"""End-to-end energy accounting (§7 "Area, Power, and Energy").

Each system component has idle and active power; a component's energy is
``active_power × busy_time + idle_power × (makespan − busy_time)`` plus
explicit per-byte transfer energies for interconnect hops.  The pipeline
simulator fills a ledger per configuration; Fig. 16 is a ratio of ledger
totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PowerSpec:
    """Idle/active power of one component."""

    name: str
    active_w: float
    idle_w: float


#: Host CPU: EPYC-7742 class (225 W TDP, measured idle ~90 W).
HOST_CPU = PowerSpec("host-cpu", 225.0, 90.0)

#: Host DRAM: 8 channels, a few watts background plus access power.
HOST_DRAM = PowerSpec("host-dram", 40.0, 24.0)

#: Analysis accelerator (GEM class ASIC board).
ANALYSIS_ACC = PowerSpec("analysis-acc", 25.0, 4.0)

#: SAGe decompression logic (Table 1: sub-milliwatt; board overhead nil
#: because it is integrated into an existing chip).
SAGE_LOGIC = PowerSpec("sage-logic", 0.00049, 0.0001)

#: Idealized BWT accelerator attached to (N)SprAC (die + board).
BWT_ACC = PowerSpec("bwt-acc", 18.0, 3.0)


@dataclass
class EnergyLedger:
    """Accumulates per-component energy over a simulated execution."""

    makespan_s: float = 0.0
    joules: dict[str, float] = field(default_factory=dict)

    def charge_component(self, spec: PowerSpec, busy_s: float,
                         makespan_s: float | None = None) -> None:
        """Busy at active power, idle at idle power for the remainder."""
        span = self.makespan_s if makespan_s is None else makespan_s
        busy_s = min(busy_s, span)
        energy = spec.active_w * busy_s + spec.idle_w * (span - busy_s)
        self.joules[spec.name] = self.joules.get(spec.name, 0.0) + energy

    def charge_fixed(self, name: str, joules: float) -> None:
        """Direct energy charge (e.g., link transfer energy)."""
        self.joules[name] = self.joules.get(name, 0.0) + joules

    @property
    def total_joules(self) -> float:
        return sum(self.joules.values())

    def breakdown(self) -> dict[str, float]:
        """Per-component fractions of total energy."""
        total = max(self.total_joules, 1e-12)
        return {name: j / total for name, j in sorted(self.joules.items())}
