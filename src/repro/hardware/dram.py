"""DRAM bandwidth/energy models (Ramulator-class inputs, §7).

Two instances matter: the host's multi-channel DDR4 (where software
decompressors thrash — §3.2 notes they saturate at 32 threads on eight
channels), and the SSD's small, *single-channel* internal DRAM, over 95%
of which holds FTL mapping metadata — which is why SAGe streams flash
data through registers instead of buffering it there (§6 mode 3).
"""

from __future__ import annotations

from dataclasses import dataclass

GIB = float(1 << 30)


@dataclass(frozen=True)
class DRAMModel:
    """A DRAM subsystem: channels × per-channel bandwidth."""

    name: str
    channels: int
    channel_bandwidth_bytes_per_s: float
    capacity_bytes: float
    idle_power_w: float
    energy_pj_per_byte: float = 120.0   # DDR4 activate+IO class

    @property
    def peak_bandwidth(self) -> float:
        return self.channels * self.channel_bandwidth_bytes_per_s

    def effective_bandwidth(self, random_access: bool = False) -> float:
        """Streaming gets peak; random access a fraction of it."""
        return self.peak_bandwidth * (0.35 if random_access else 0.85)

    def access_time(self, nbytes: float,
                    random_access: bool = False) -> float:
        return nbytes / self.effective_bandwidth(random_access)

    def access_energy(self, nbytes: float) -> float:
        return nbytes * self.energy_pj_per_byte * 1e-12


#: Host memory: 8-channel DDR4-3200 (EPYC 7742 class), 1.5 TB.
HOST_DDR4 = DRAMModel("host DDR4-3200 x8", 8, 25.6e9, 1.5e12, 24.0)

#: SSD-internal DRAM: one LPDDR4 channel, 4 GB for a 4 TB drive, with
#: over 95% holding L2P mapping metadata.
SSD_INTERNAL_DRAM = DRAMModel("SSD internal LPDDR4 x1", 1, 4.26e9,
                              4e9, 0.35)

#: Fraction of SSD DRAM available to anything but mapping metadata.
SSD_DRAM_AVAILABLE_FRACTION = 0.05


def ssd_dram_free_bytes(model: DRAMModel = SSD_INTERNAL_DRAM) -> float:
    """Bytes of SSD DRAM actually available for data buffering."""
    return model.capacity_bytes * SSD_DRAM_AVAILABLE_FRACTION
