"""The SAGe storage device: interface commands over SSD + FTL + units.

Realizes §5.4's two commands end to end against the functional models:

- ``SAGe_Write``: place a compressed archive on the SSD with the striped
  genomic layout (§5.3) and record its FTL metadata.
- ``SAGe_Read``: stream the archive back through the per-channel
  SU/RCU/CU array (§5.2), returning reads *in the requested output
  format* plus a timing estimate (NAND streaming vs unit rate, capped by
  the external link for host-side delivery).

Non-genomic files coexist through the vendor FTL path, untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..core.container import SAGeArchive
from ..core.formats import OutputFormat, bits_per_base, encode_output
from ..genomics.reads import ReadSet
from .sage_units import HardwareRunStats, SAGeHardwareModel
from .ssd import SAGeFTL, SSDModel, pcie_ssd


class DeviceError(RuntimeError):
    """Raised on invalid device commands."""


@dataclass
class ReadCommandResult:
    """Outcome of one ``SAGe_Read`` command."""

    reads: ReadSet
    formatted: list | None
    output_format: OutputFormat
    stats: HardwareRunStats
    nand_time_s: float          # streaming the compressed bytes
    decode_time_s: float        # SU/RCU array time
    delivery_time_s: float      # formatted output over the external link

    @property
    def prepared_time_s(self) -> float:
        """End-to-end preparation latency (stages overlap; max rules)."""
        return max(self.nand_time_s, self.decode_time_s,
                   self.delivery_time_s)


@dataclass
class SAGeDevice:
    """An SSD with SAGe hardware and FTL support."""

    ssd: SSDModel = field(default_factory=pcie_ssd)

    def __post_init__(self) -> None:
        self.ftl = SAGeFTL(channels=self.ssd.channels, nand=self.ssd.nand)
        self.hardware = SAGeHardwareModel(self.ssd)
        self._archives: dict[str, SAGeArchive] = {}

    # ------------------------------------------------------------------
    # SAGe_Write
    # ------------------------------------------------------------------

    def sage_write(self, name: str, archive: SAGeArchive) -> int:
        """Store a compressed read set with the genomic layout.

        Returns the number of bytes written.  The FTL stripes the blob
        across channels at aligned page offsets so later reads engage
        the full internal bandwidth.
        """
        if name in self._archives:
            raise DeviceError(f"genomic file {name!r} already exists")
        blob = archive.to_bytes()
        self.ftl.write_genomic(name, len(blob))
        if not self.ftl.stripe_aligned(name):
            raise DeviceError("layout invariant violated on write")
        self._archives[name] = archive
        return len(blob)

    def write_regular(self, name: str, nbytes: int) -> None:
        """Vendor path for non-genomic data (untouched by SAGe)."""
        self.ftl.write_regular(name, nbytes)

    def delete(self, name: str) -> None:
        """Remove a file; genomic archives free their FTL pages."""
        self.ftl.delete(name)
        self._archives.pop(name, None)

    # ------------------------------------------------------------------
    # SAGe_Read
    # ------------------------------------------------------------------

    def sage_read(self, name: str,
                  fmt: OutputFormat = OutputFormat.ASCII,
                  materialize: bool = True) -> ReadCommandResult:
        """Decompress a stored read set into the requested format."""
        archive = self._archives.get(name)
        if archive is None:
            raise DeviceError(f"no genomic file {name!r}")

        reads, stats = self.hardware.run(archive)
        formatted = None
        if materialize:
            formatted = [encode_output(read.codes, fmt) for read in reads]

        compressed_bytes = stats.compressed_bits / 8.0
        nand_time = compressed_bytes / self.ssd.internal_read_bandwidth
        decode_time = stats.total_cycles / (
            self.hardware.clock_hz * self.ssd.channels)
        out_bytes = stats.output_bases * bits_per_base(fmt) / 8.0
        delivery_time = out_bytes / self.ssd.external.bandwidth_bytes_per_s
        return ReadCommandResult(
            reads=reads, formatted=formatted, output_format=fmt,
            stats=stats, nand_time_s=nand_time,
            decode_time_s=decode_time, delivery_time_s=delivery_time)

    def iter_batches(self, name: str,
                     batch_reads: int = 4096) -> Iterator[ReadSet]:
        """Stream decoded reads in batches (the pipeline's unit of work).

        Decompressed batches feed the analysis system directly — they
        are never written back to the SSD (§3.1).
        """
        archive = self._archives.get(name)
        if archive is None:
            raise DeviceError(f"no genomic file {name!r}")
        from ..core.decompressor import SAGeDecompressor
        from ..genomics.reads import Read

        def iter_codes():
            if archive.is_blocked:
                # Decode section by section: the blocks are the SSD's
                # natural streaming unit (§5.3).
                for index in range(archive.n_blocks):
                    view = archive.block_view(index)
                    yield from SAGeDecompressor(view).iter_read_codes()
            else:
                yield from SAGeDecompressor(archive).iter_read_codes()

        batch: list = []
        for i, codes in enumerate(iter_codes()):
            batch.append(Read(codes, header=f"{name}.{i}"))
            if len(batch) >= batch_reads:
                yield ReadSet(batch, name=name)
                batch = []
        if batch:
            yield ReadSet(batch, name=name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def genomic_files(self) -> list[str]:
        return sorted(self._archives)

    def layout_report(self, name: str) -> dict:
        """FTL placement summary for one genomic file."""
        if name not in self._archives:
            raise DeviceError(f"no genomic file {name!r}")
        return {
            "aligned": self.ftl.stripe_aligned(name),
            "channels_per_stripe":
                self.ftl.channels_used_per_stripe(name),
            "pages": len(self.ftl.files[name]["pages"]),
        }
