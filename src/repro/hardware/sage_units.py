"""Functional + cycle model of SAGe's decompression hardware (§5.2).

Three units per SSD channel: the Scan Unit (SU) walks the position and
guide arrays through 8-bit shift registers; the Read Construction Unit
(RCU) walks the consensus and MBTA, emitting one reconstructed base per
cycle through a 150-bp chunk register; the Control Unit (CU) coordinates
them.  The functional behaviour *is* the software reference decoder —
this model wraps it with instrumented readers and derives cycle counts,
so output equivalence with :class:`~repro.core.SAGeDecompressor` holds by
construction and is asserted in tests.

Throughput math (§8.2): the units run at 1 GHz and are deliberately
faster than NAND streaming, so end-to-end decompression is bounded by
flash bandwidth; both rates are reported so the pipeline can take the min.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.bitio import BitReader
from ..core.container import SAGeArchive
from ..core.decompressor import SAGeDecompressor
from ..core.formats import OutputFormat, bits_per_base
from ..genomics.reads import ReadSet
from . import area_power
from .ssd import SSDModel

#: SU consumes up to one 8-bit register refill per cycle per stream.
SU_BITS_PER_CYCLE = 8

#: RCU read register size (base pairs); longer reads go in chunks (§5.2).
#: Consensus copies move through the register a chunk per cycle, which is
#: what makes the units faster than NAND streaming (§8.2).
READ_REGISTER_BP = 150

#: CU hand-off overhead per read (cycles).
CU_CYCLES_PER_READ = 2

#: Streams scanned by the SU vs consumed by the RCU.
SU_STREAMS = ("mpga", "mpa", "mmpga", "mmpa", "lengths", "side")
RCU_STREAMS = ("mbta", "consensus", "corner", "unmapped")


class _CountingReader(BitReader):
    """BitReader that tallies every bit consumed."""

    def __init__(self, payload: bytes, bits: int):
        super().__init__(payload, bits)
        self.bits_consumed = 0

    def read(self, nbits: int) -> int:
        value = super().read(nbits)
        self.bits_consumed += nbits
        return value


@dataclass
class HardwareRunStats:
    """Byte/cycle accounting from one decompression run."""

    stream_bits: dict[str, int] = field(default_factory=dict)
    output_bases: int = 0
    n_reads: int = 0
    su_cycles: int = 0
    rcu_cycles: int = 0
    total_cycles: int = 0

    @property
    def compressed_bits(self) -> int:
        return sum(self.stream_bits.values())


@dataclass
class HardwareThroughput:
    """Decompression rates for one configuration."""

    unit_bases_per_s: float        # what the SU/RCU array can sustain
    nand_bases_per_s: float        # what flash streaming can feed
    output_format: OutputFormat

    @property
    def effective_bases_per_s(self) -> float:
        return min(self.unit_bases_per_s, self.nand_bases_per_s)

    @property
    def effective_output_bytes_per_s(self) -> float:
        return self.effective_bases_per_s \
            * bits_per_base(self.output_format) / 8.0


class SAGeHardwareModel:
    """Per-channel SU/RCU/CU array attached to an SSD."""

    def __init__(self, ssd: SSDModel, channels: int | None = None,
                 clock_hz: float = area_power.CLOCK_HZ):
        self.ssd = ssd
        self.channels = channels if channels is not None else ssd.channels
        self.clock_hz = clock_hz

    # ------------------------------------------------------------------
    # Functional run with accounting
    # ------------------------------------------------------------------

    def run(self, archive: SAGeArchive) -> tuple[ReadSet, HardwareRunStats]:
        """Decode an archive, returning reads + cycle/byte accounting.

        Blocked (v3) archives decode section by section — each block is
        an independent unit of work for a channel's SU/RCU array (§5.3)
        — and the per-block accounting is merged.
        """
        if archive.is_blocked:
            return self._run_blocked(archive)
        decoder = SAGeDecompressor(archive)
        readers = {name: _CountingReader(payload, bits)
                   for name, (payload, bits) in archive.streams.items()}
        codes = list(decoder.iter_read_codes(readers))
        stats = HardwareRunStats(n_reads=len(codes))
        stats.stream_bits = {name: reader.bits_consumed
                             for name, reader in readers.items()}
        # The RCU streams the consensus exactly once: reads are sorted by
        # matching position (§5.1.3), so consensus access is sequential.
        stats.stream_bits["consensus"] = archive.streams["consensus"][1]
        # The RCU walks the consensus (2 bits per copied base) as it
        # reconstructs; charge the full output for the register traffic.
        stats.output_bases = int(sum(c.size for c in codes))
        su_bits = sum(stats.stream_bits.get(s, 0) for s in SU_STREAMS)
        rcu_stream_bits = sum(stats.stream_bits.get(s, 0)
                              for s in RCU_STREAMS)
        stats.su_cycles = -(-su_bits // SU_BITS_PER_CYCLE)
        # RCU: scan MBTA/corner through an 8-bit register, emit bases in
        # 150-bp chunk copies (mismatch patches ride on the scan cost).
        rcu_scan = -(-rcu_stream_bits // SU_BITS_PER_CYCLE)
        rcu_emit = -(-stats.output_bases // READ_REGISTER_BP)
        stats.rcu_cycles = rcu_scan + rcu_emit
        stats.total_cycles = (max(stats.su_cycles, stats.rcu_cycles)
                              + CU_CYCLES_PER_READ * stats.n_reads)
        quality = archive.quality
        reads = decoder.decompress() if quality is not None else None
        if reads is None:
            from ..genomics.reads import Read
            reads = ReadSet([Read(c, header=f"hw.{i}")
                             for i, c in enumerate(codes)],
                            name=archive.name)
        return reads, stats

    def _run_blocked(
            self, archive: SAGeArchive) -> tuple[ReadSet, HardwareRunStats]:
        """Decode every block independently and merge the accounting."""
        from ..genomics.reads import Read
        total = HardwareRunStats()
        merged: list = []
        for index in range(archive.n_blocks):
            view = archive.block_view(index)
            reads, stats = self.run(view)
            for name, bits in stats.stream_bits.items():
                if name == "consensus" and index > 0:
                    # The consensus is stored once and striped to every
                    # channel; don't count its fetch per block.
                    continue
                total.stream_bits[name] = \
                    total.stream_bits.get(name, 0) + bits
            total.output_bases += stats.output_bases
            total.n_reads += stats.n_reads
            total.su_cycles += stats.su_cycles
            total.rcu_cycles += stats.rcu_cycles
            total.total_cycles += stats.total_cycles
            merged.extend(reads)
        has_quality = any(r.quality is not None for r in merged)
        if not has_quality:
            # Per-block fallback headers collide; re-enumerate globally.
            merged = [Read(r.codes, header=f"hw.{i}")
                      for i, r in enumerate(merged)]
        return ReadSet(merged, name=archive.name), total

    # ------------------------------------------------------------------
    # Validation against the software decoders
    # ------------------------------------------------------------------

    # sage-lint: disable-next=SGL003 - workers= kept as a warn-once deprecated shim
    def verify(self, archive, *, workers: int | None = None,
               options=None) -> bool:
        """Check functional equivalence with the software decode path.

        ``archive`` may be a :class:`SAGeArchive` or the
        :class:`repro.api.SAGeDataset` facade — the software side always
        decodes through the facade (the served path), so the functional
        model and the service API cannot drift.  Runs the
        cycle-accounted hardware decode and the (optionally parallel,
        ``workers > 1`` via ``options=EngineOptions(workers=...)``)
        streaming software decode and compares base codes and quality
        scores read by read.  Headers are not compared: the hardware
        path re-enumerates fallback names.  Returns ``True`` on success
        and raises :class:`ValueError` on the first mismatch —
        equivalence is the §5.2 contract that the SU/RCU walk *is* the
        reference decoder.

        The bare ``workers=`` shortcut is deprecated; thread knobs
        through :class:`~repro.api.EngineOptions` instead.
        """
        from .._compat import warn_once
        from ..api.dataset import SAGeDataset
        from ..api.options import EngineOptions
        if workers is not None and options is not None:
            raise ValueError("verify: pass either options= or the "
                             "deprecated workers= shortcut, not both")
        if options is None and workers is not None:
            warn_once(
                "sage_units.verify.workers",
                "SAGeHardwareModel.verify(workers=...) is deprecated; "
                "pass options=EngineOptions(workers=...) instead")
            options = EngineOptions(workers=workers)
        if isinstance(archive, SAGeDataset):
            # Keep the caller's session (its options and cached
            # decoder) unless an explicit override was given.
            dataset = archive if options is None \
                else SAGeDataset(archive.archive, options=options)
        else:
            dataset = SAGeDataset(archive,
                                  options=options or EngineOptions())
        hw_reads, _ = self.run(dataset.archive)
        sw_reads = dataset.read_set()
        if len(hw_reads) != len(sw_reads):
            raise ValueError(
                f"hardware model decoded {len(hw_reads)} reads, software "
                f"decoder {len(sw_reads)}")
        for i, (hw, sw) in enumerate(zip(hw_reads, sw_reads)):
            if not np.array_equal(hw.codes, sw.codes):
                raise ValueError(f"read {i}: base codes diverge between "
                                 "hardware model and software decoder")
            if (hw.quality is None) != (sw.quality is None) or (
                    hw.quality is not None
                    and not np.array_equal(hw.quality, sw.quality)):
                raise ValueError(f"read {i}: quality scores diverge "
                                 "between hardware model and software "
                                 "decoder")
        return True

    # ------------------------------------------------------------------
    # Rate model
    # ------------------------------------------------------------------

    def throughput(self, archive: SAGeArchive,
                   stats: HardwareRunStats | None = None,
                   fmt: OutputFormat = OutputFormat.ASCII,
                   internal: bool = True) -> HardwareThroughput:
        """Sustained decompression rate for this archive's statistics.

        ``internal=True`` models NDP placement (mode 3): flash feeds the
        units at internal bandwidth.  ``internal=False`` models modes 1/2
        where compressed data crosses the external link first.
        """
        if stats is None:
            _, stats = self.run(archive)
        cycles_per_base = max(stats.total_cycles, 1) \
            / max(stats.output_bases, 1)
        per_channel = self.clock_hz / cycles_per_base
        unit_rate = per_channel * self.channels

        nand_bw = (self.ssd.internal_read_bandwidth if internal
                   else self.ssd.external_read_bandwidth)
        compressed_bytes = max(1, stats.compressed_bits // 8)
        bases_per_compressed_byte = stats.output_bases / compressed_bytes
        nand_rate = nand_bw * bases_per_compressed_byte
        return HardwareThroughput(unit_bases_per_s=unit_rate,
                                  nand_bases_per_s=nand_rate,
                                  output_format=fmt)

    def power_w(self, mode3: bool = False) -> float:
        """Logic power of the unit array (Table 1)."""
        return area_power.total_power_mw(self.channels, mode3) / 1000.0

    def area_mm2(self) -> float:
        """Logic area of the unit array (Table 1)."""
        return area_power.total_area_mm2(self.channels)
