"""Area and power of SAGe's logic units — Table 1 of the paper.

Values are the paper's Design Compiler synthesis results at 22 nm, 1 GHz.
The area total for an 8-channel SSD (0.002 mm²) includes the double
registers used by integration mode 3; the 0.49 mW power total excludes
them (they are the separate "+0.28 mW for mode 3" line).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LogicUnit:
    """One synthesized unit instance (per SSD channel)."""

    name: str
    instances_per_channel: int
    area_mm2: float
    power_mw: float
    mode3_only: bool = False


#: Table 1 rows (22 nm node, 1 GHz).
SCAN_UNIT = LogicUnit("Scan Unit", 1, 0.000045, 0.014)
READ_CONSTRUCTION_UNIT = LogicUnit("Read Construction Unit", 1,
                                   0.000017, 0.023)
DOUBLE_REGISTERS = LogicUnit("Double Registers", 1, 0.00020, 0.035,
                             mode3_only=True)
CONTROL_UNIT = LogicUnit("Control Unit", 1, 0.000029, 0.025)

ALL_UNITS = (SCAN_UNIT, READ_CONSTRUCTION_UNIT, DOUBLE_REGISTERS,
             CONTROL_UNIT)

#: Default channel count of the evaluated SSD.
DEFAULT_CHANNELS = 8

#: Synthesis clock (§8.2: units run at 1 GHz; NAND throughput bounds them).
CLOCK_HZ = 1_000_000_000

#: Area of one SSD-controller core (Cortex-R4 class, 22 nm-scaled): the
#: paper reports SAGe at "0.7% of the three cores [169] in an SSD
#: controller [170]", which puts three cores at ~0.33 mm².
SSD_CORE_AREA_MM2 = 0.111
SSD_CORE_COUNT = 3

#: FPGA utilization of SAGe's logic (§6): fraction of a KU15P's resources.
FPGA_LUT_FRACTION = 0.025
FPGA_FF_FRACTION = 0.008


def total_area_mm2(channels: int = DEFAULT_CHANNELS,
                   include_mode3: bool = True) -> float:
    """Total logic area for an SSD with ``channels`` channels."""
    return sum(u.area_mm2 * u.instances_per_channel * channels
               for u in ALL_UNITS
               if include_mode3 or not u.mode3_only)


def total_power_mw(channels: int = DEFAULT_CHANNELS,
                   include_mode3: bool = False) -> float:
    """Total logic power; mode-3 double registers add 0.28 mW at 8ch."""
    return sum(u.power_mw * u.instances_per_channel * channels
               for u in ALL_UNITS
               if include_mode3 or not u.mode3_only)


def area_fraction_of_ssd_cores(channels: int = DEFAULT_CHANNELS) -> float:
    """SAGe area as a fraction of the SSD controller's three cores."""
    return total_area_mm2(channels) / (SSD_CORE_AREA_MM2 * SSD_CORE_COUNT)


def table1_rows(channels: int = DEFAULT_CHANNELS) -> list[dict]:
    """Table 1, row by row, for the benchmark harness to print."""
    rows = [{
        "unit": u.name,
        "instances": f"{u.instances_per_channel} per channel",
        "area_mm2": u.area_mm2,
        "power_mw": u.power_mw,
    } for u in ALL_UNITS]
    rows.append({
        "unit": f"Total for an {channels}-channel SSD",
        "instances": "-",
        "area_mm2": total_area_mm2(channels),
        "power_mw": total_power_mw(channels),
        "power_mw_mode3_extra":
            total_power_mw(channels, True) - total_power_mw(channels),
    })
    return rows
