"""Hardware substrate: SSD/FTL, DRAM, interconnects, SAGe units, energy."""

from . import area_power, device, dram, energy, interconnect, sage_units, ssd
from .dram import HOST_DDR4, SSD_INTERNAL_DRAM, DRAMModel
from .energy import EnergyLedger, PowerSpec
from .interconnect import CXL2_X8, ON_CHIP, PCIE_GEN3_X4, PCIE_GEN4_X8, SATA3, Link
from .sage_units import (HardwareRunStats, HardwareThroughput,
                         SAGeHardwareModel)
from .device import DeviceError, ReadCommandResult, SAGeDevice
from .ssd import FTLError, NANDConfig, SAGeFTL, SSDModel, pcie_ssd, sata_ssd

__all__ = [
    "area_power", "device", "dram", "energy", "interconnect",
    "sage_units", "ssd", "DeviceError", "ReadCommandResult", "SAGeDevice",
    "HOST_DDR4", "SSD_INTERNAL_DRAM", "DRAMModel", "EnergyLedger",
    "PowerSpec", "CXL2_X8", "ON_CHIP", "PCIE_GEN3_X4", "PCIE_GEN4_X8",
    "SATA3", "Link", "HardwareRunStats", "HardwareThroughput",
    "SAGeHardwareModel", "FTLError", "NANDConfig", "SAGeFTL", "SSDModel",
    "pcie_ssd", "sata_ssd",
]
