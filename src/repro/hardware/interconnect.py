"""Interconnect models: PCIe, SATA, CXL links (§6 integration modes).

Links carry bytes at an effective bandwidth; the pipeline model charges
transfer time and per-byte energy for every hop between the SSD, SAGe's
hardware, host DRAM, and the analysis accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass

GIB = float(1 << 30)


@dataclass(frozen=True)
class Link:
    """A point-to-point interconnect."""

    name: str
    bandwidth_bytes_per_s: float
    energy_pj_per_byte: float = 20.0

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across the link."""
        if nbytes < 0:
            raise ValueError("byte count must be non-negative")
        return nbytes / self.bandwidth_bytes_per_s

    def transfer_energy(self, nbytes: float) -> float:
        """Joules to move ``nbytes`` across the link."""
        return nbytes * self.energy_pj_per_byte * 1e-12

    def throughput(self) -> float:
        """Bytes per second (alias for readability at call sites)."""
        return self.bandwidth_bytes_per_s


#: PCIe Gen4 x8 — PM1735-class external interface (~8 GB/s usable read).
PCIE_GEN4_X8 = Link("PCIe 4.0 x8", 8.0 * GIB, 18.0)

#: PCIe Gen3 x4 — mid-range NVMe class.
PCIE_GEN3_X4 = Link("PCIe 3.0 x4", 3.5 * GIB, 20.0)

#: SATA III — 870-EVO-class cost-optimized interface (~560 MB/s).
SATA3 = Link("SATA III", 0.56e9, 35.0)

#: CXL 2.0 x8 — alternative accelerator attach (§6 mode 1).
CXL2_X8 = Link("CXL 2.0 x8", 16.0 * GIB, 12.0)

#: On-chip attach for integration mode 2 (same-die, effectively free).
ON_CHIP = Link("on-chip", 64.0 * GIB, 0.5)


def named_links() -> dict[str, Link]:
    """All predefined links keyed by name."""
    return {link.name: link for link in
            (PCIE_GEN4_X8, PCIE_GEN3_X4, SATA3, CXL2_X8, ON_CHIP)}
