"""SSD model: channels, NAND geometry, FTL, and SAGe's data layout (§5.3).

The timing side feeds the pipeline simulator (MQSim-class inputs): internal
streaming bandwidth is the per-channel min(sense rate, bus rate) times the
channel count; external reads are additionally capped by the host link.

The functional side models the FTL changes SAGe needs: genomic files are
striped round-robin across channels with *equal page offsets in the active
blocks* so multi-plane reads engage every channel, and garbage collection
relocates whole parallel units in original write order, preserving the
alignment invariant.  Non-genomic data uses the baseline allocation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dram import SSD_INTERNAL_DRAM, DRAMModel
from .interconnect import PCIE_GEN4_X8, SATA3, Link


@dataclass(frozen=True)
class NANDConfig:
    """Per-channel NAND geometry and timing (TLC class)."""

    page_bytes: int = 16384
    pages_per_block: int = 256
    blocks_per_channel: int = 64
    planes: int = 4
    read_latency_s: float = 60e-6          # tR
    channel_bus_bytes_per_s: float = 1.2e9  # ONFI transfer rate

    @property
    def sense_bandwidth(self) -> float:
        """Multi-plane pipelined sensing rate per channel."""
        return self.planes * self.page_bytes / self.read_latency_s

    @property
    def channel_bandwidth(self) -> float:
        """Per-channel streaming read rate."""
        return min(self.sense_bandwidth, self.channel_bus_bytes_per_s)


@dataclass
class SSDModel:
    """Timing model of one SSD."""

    name: str = "pcie-ssd"
    channels: int = 8
    nand: NANDConfig = field(default_factory=NANDConfig)
    external: Link = PCIE_GEN4_X8
    dram: DRAMModel = field(default_factory=lambda: SSD_INTERNAL_DRAM)
    active_power_w: float = 8.5
    idle_power_w: float = 2.0

    @property
    def internal_read_bandwidth(self) -> float:
        """Aggregate NAND streaming bandwidth (NDP sees this)."""
        return self.channels * self.nand.channel_bandwidth

    @property
    def external_read_bandwidth(self) -> float:
        """What the host sees: internal bandwidth capped by the link."""
        return min(self.internal_read_bandwidth,
                   self.external.bandwidth_bytes_per_s)

    def read_time(self, nbytes: float, internal: bool = False) -> float:
        bandwidth = (self.internal_read_bandwidth if internal
                     else self.external_read_bandwidth)
        return self.nand.read_latency_s + nbytes / bandwidth


def pcie_ssd(channels: int = 8) -> SSDModel:
    """Performance-optimized PCIe SSD (PM1735 class)."""
    return SSDModel(name="pcie-ssd", channels=channels,
                    external=PCIE_GEN4_X8)


def sata_ssd(channels: int = 8) -> SSDModel:
    """Cost-optimized SATA SSD (870 EVO class)."""
    return SSDModel(name="sata-ssd", channels=channels, external=SATA3,
                    active_power_w=4.0, idle_power_w=1.2)


# ----------------------------------------------------------------------
# FTL with SAGe's genomic layout
# ----------------------------------------------------------------------


@dataclass
class _Page:
    """One physical page slot."""

    file: str | None = None
    logical_index: int = -1     # stripe/page index within the file
    valid: bool = False


class FTLError(RuntimeError):
    """Raised on allocation failures or layout violations."""


class SAGeFTL:
    """Functional FTL with genomic striping and grouped GC."""

    def __init__(self, channels: int = 8,
                 nand: NANDConfig | None = None):
        self.nand = nand or NANDConfig()
        self.channels = channels
        self.blocks = [[[_Page() for _ in range(self.nand.pages_per_block)]
                        for _ in range(self.nand.blocks_per_channel)]
                       for _ in range(channels)]
        # Shared cursor for genomic stripes: (block, page) aligned across
        # all channels; allocated lazily from free parallel units.
        self._stripe_block: int | None = None
        self._stripe_page = 0
        self._genomic_blocks: set[int] = set()
        self._regular_blocks: set[tuple[int, int]] = set()
        self.files: dict[str, dict] = {}

    # -- allocation ----------------------------------------------------

    def _pages_needed(self, nbytes: int) -> int:
        return max(1, (nbytes + self.nand.page_bytes - 1)
                   // self.nand.page_bytes)

    def _alloc_stripe(self) -> tuple[int, int]:
        """Next aligned (block, page) stripe slot across all channels."""
        if (self._stripe_block is None
                or self._stripe_page >= self.nand.pages_per_block):
            self._stripe_block = self._next_free_genomic_block()
            self._genomic_blocks.add(self._stripe_block)
            self._stripe_page = 0
        slot = (self._stripe_block, self._stripe_page)
        self._stripe_page += 1
        return slot

    def _place(self, name: str, logical: int, channel: int, block: int,
               page: int, placements: list) -> None:
        slot = self.blocks[channel][block][page]
        if slot.valid:
            raise FTLError("allocation collision")
        slot.file = name
        slot.logical_index = logical
        slot.valid = True
        placements.append((channel, block, page))

    def write_genomic(self, name: str, nbytes: int) -> None:
        """Stripe a genomic file across all channels (SAGe_Write path)."""
        if name in self.files:
            raise FTLError(f"file {name!r} already exists")
        n_pages = self._pages_needed(nbytes)
        n_stripes = (n_pages + self.channels - 1) // self.channels
        placements: list[tuple[int, int, int]] = []
        logical = 0
        for _ in range(n_stripes):
            block, page = self._alloc_stripe()
            for channel in range(self.channels):
                if logical >= n_pages:
                    break
                self._place(name, logical, channel, block, page,
                            placements)
                logical += 1
        self.files[name] = {"genomic": True, "bytes": nbytes,
                            "pages": placements}

    def _next_free_genomic_block(self) -> int:
        for block in range(self.nand.blocks_per_channel):
            if block in self._genomic_blocks:
                continue
            if any(self.blocks[ch][block][0].valid
                   for ch in range(self.channels)):
                continue
            if any((ch, block) in self._regular_blocks
                   for ch in range(self.channels)):
                continue
            return block
        raise FTLError("no free parallel unit for genomic data")

    def write_regular(self, name: str, nbytes: int) -> None:
        """Baseline allocation path for non-genomic data."""
        if name in self.files:
            raise FTLError(f"file {name!r} already exists")
        n_pages = self._pages_needed(nbytes)
        placements: list[tuple[int, int, int]] = []
        for logical in range(n_pages):
            channel = logical % self.channels
            placed = False
            for block in range(self.nand.blocks_per_channel):
                if block in self._genomic_blocks:
                    continue
                for page in range(self.nand.pages_per_block):
                    slot = self.blocks[channel][block][page]
                    if not slot.valid:
                        slot.file = name
                        slot.logical_index = logical
                        slot.valid = True
                        self._regular_blocks.add((channel, block))
                        placements.append((channel, block, page))
                        placed = True
                        break
                if placed:
                    break
            if not placed:
                raise FTLError("SSD full")
        self.files[name] = {"genomic": False, "bytes": nbytes,
                            "pages": placements}

    def delete(self, name: str) -> None:
        """Invalidate a file's pages (GC reclaims them later)."""
        info = self.files.pop(name, None)
        if info is None:
            raise FTLError(f"no such file {name!r}")
        for channel, block, page in info["pages"]:
            self.blocks[channel][block][page].valid = False

    # -- layout queries --------------------------------------------------

    def placements(self, name: str) -> list[tuple[int, int, int]]:
        """(channel, block, page) placements in logical order."""
        info = self.files[name]
        return sorted(info["pages"],
                      key=lambda p: self._logical_of(p))

    def _logical_of(self, placement: tuple[int, int, int]) -> int:
        channel, block, page = placement
        return self.blocks[channel][block][page].logical_index

    def stripe_aligned(self, name: str) -> bool:
        """§5.3 invariant: each stripe sits at one (block, page) offset
        across consecutive channels starting at channel 0."""
        info = self.files[name]
        if not info["genomic"]:
            return False
        by_logical = sorted(info["pages"], key=self._logical_of)
        for i, (channel, block, page) in enumerate(by_logical):
            stripe, lane = divmod(i, self.channels)
            if channel != lane:
                return False
            ref_channel, ref_block, ref_page = by_logical[
                stripe * self.channels]
            if (block, page) != (ref_block, ref_page):
                return False
        return True

    def channels_used_per_stripe(self, name: str) -> float:
        """Mean channels engaged per stripe (8.0 = full bandwidth)."""
        info = self.files[name]
        n_pages = len(info["pages"])
        n_stripes = (n_pages + self.channels - 1) // self.channels
        return n_pages / max(1, n_stripes)

    # -- garbage collection ----------------------------------------------

    def gc_genomic_unit(self, block: int) -> int:
        """Grouped GC: relocate every valid page of a parallel unit.

        Valid stripes are rewritten in their original logical order to a
        fresh parallel unit, preserving the alignment invariant.  Returns
        the number of pages moved.
        """
        if block not in self._genomic_blocks:
            raise FTLError(f"block {block} is not a genomic parallel unit")
        victims: list[tuple[str, int]] = []
        for channel in range(self.channels):
            for page in range(self.nand.pages_per_block):
                slot = self.blocks[channel][block][page]
                if slot.valid:
                    victims.append((slot.file, slot.logical_index))
                slot.file = None
                slot.valid = False
                slot.logical_index = -1
        self._genomic_blocks.discard(block)
        if self._stripe_block == block:
            self._stripe_block = None  # the cursor pointed into the victim

        # Rewrite per file, stripe by stripe, in logical order.
        moved = 0
        files: dict[str, list[int]] = {}
        for fname, logical in victims:
            files.setdefault(fname, []).append(logical)
        for fname, logicals in files.items():
            info = self.files[fname]
            info["pages"] = [
                p for p in info["pages"]
                if self.blocks[p[0]][p[1]][p[2]].valid
                and self.blocks[p[0]][p[1]][p[2]].file == fname]
            logicals.sort()
            for i, logical in enumerate(logicals):
                channel = logical % self.channels
                if i == 0 or channel == 0:
                    new_block, new_page = self._alloc_stripe()
                self._place(fname, logical, channel, new_block, new_page,
                            info["pages"])
                moved += 1
        return moved
