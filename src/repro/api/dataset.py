"""The :class:`SAGeDataset` facade: one session API over the system.

SAGe's value proposition is that compressed genomic data stays
*directly analyzable* — data preparation overlaps analysis instead of
preceding it (§7).  Before this facade, every consumer re-wired the
same plumbing by hand: ``SAGeCompressor``/``BlockCompressor`` on the
way in, ``SAGeDecompressor``/``StreamExecutor`` plus sink objects on
the way out, with worker/backend/prefetch kwargs repeated at each
layer.  ``SAGeDataset`` is the single stable entry point the CLI,
examples, benchmarks and future server/sharding layers sit on:

    from repro.api import EngineOptions, SAGeDataset

    options = EngineOptions(block_reads=4096, workers=4)
    dataset = SAGeDataset.from_fastq("in.fastq", reference="ref.txt",
                                     options=options)
    dataset.save("reads.sage")

    with SAGeDataset.open("reads.sage", options=options) as ds:
        report, rate = ds.pipe("property").pipe("mapping-rate").run()
        for block in ds.blocks():        # block i while i+1 decodes
            ...

Everything executes on the existing engines — the block compressor,
the streaming executor, the reference decompressor — so output stays
byte-identical to the legacy call paths, which now forward here.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..core.blocks import BlockCompressor
from ..core.compressor import SAGeCompressor, SAGeConfig
from ..core.container import SAGeArchive
from ..core.decompressor import SAGeDecompressor
from ..core.errors import SAGeError
from ..genomics import fastq
from ..genomics import sequence as seqmod
from ..genomics.reads import Read, ReadSet
from ..pipeline.executor import BlockGap, CollectSink, ExecutorStats, \
    FastqSink, Sink, StreamExecutor
from .options import EngineOptions
from .sinks import resolve_sink

__all__ = ["Pipeline", "SAGeDataset", "SalvageReport", "SourceTotals",
           "VerifyReport", "atomic_write_bytes"]


@dataclass(frozen=True)
class SourceTotals:
    """Input accounting gathered while compressing a source."""

    reads: int
    bases: int
    fastq_bytes: int


def atomic_write_bytes(path: str | Path, blob: bytes) -> int:
    """Write ``blob`` to ``path`` atomically; returns the byte count.

    The bytes land in a same-directory temp file, are fsynced, and the
    temp file is :func:`os.replace`-d over the target — an interrupted
    write leaves either the old file or the new one, never a half
    archive.  The temp file is removed on failure.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(blob)


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of :meth:`SAGeDataset.verify`.

    ``header``/``consensus`` and each ``blocks[i]`` entry are one of
    ``"ok"``, ``"failed"``, or ``"unchecked"`` (pre-v4 layouts carry no
    digests).  ``deep`` marks whether every block was additionally
    fully decoded; decode failures land in ``errors`` keyed by block
    index.
    """

    format_version: int
    header: str
    consensus: str
    blocks: tuple[str, ...]
    deep: bool = False
    errors: dict = field(default_factory=dict)

    @property
    def status(self) -> str:
        """Archive-level rollup: ``ok`` / ``failed`` / ``unchecked``."""
        statuses = {self.header, self.consensus, *self.blocks}
        if "failed" in statuses or self.errors:
            return "failed"
        if statuses == {"ok"}:
            return "ok"
        return "unchecked"

    @property
    def ok(self) -> bool:
        return self.status != "failed"

    def to_dict(self) -> dict:
        return {"format_version": self.format_version,
                "status": self.status, "header": self.header,
                "consensus": self.consensus, "blocks": list(self.blocks),
                "deep": self.deep,
                "errors": {str(k): str(v)
                           for k, v in sorted(self.errors.items())}}


@dataclass(frozen=True)
class SalvageReport:
    """Outcome of :meth:`SAGeDataset.salvage`.

    ``read_set`` holds every read recovered from intact blocks, in
    index order; ``gaps`` the :class:`BlockGap` of each lost block.
    """

    read_set: ReadSet
    n_blocks: int
    blocks_recovered: int
    gaps: tuple[BlockGap, ...]

    @property
    def blocks_lost(self) -> int:
        return len(self.gaps)

    @property
    def reads_lost(self) -> int:
        return sum(gap.n_reads for gap in self.gaps)

    @property
    def recovery_rate(self) -> float:
        return self.blocks_recovered / max(1, self.n_blocks)

    def to_dict(self) -> dict:
        return {"n_blocks": self.n_blocks,
                "blocks_recovered": self.blocks_recovered,
                "blocks_lost": self.blocks_lost,
                "reads_recovered": len(self.read_set),
                "reads_lost": self.reads_lost,
                "recovery_rate": self.recovery_rate,
                "gaps": [{"block": gap.index, "n_reads": gap.n_reads,
                          "error": gap.message} for gap in self.gaps]}


def _totals_of(read_set: ReadSet) -> SourceTotals:
    return SourceTotals(reads=len(read_set),
                        bases=read_set.total_bases,
                        fastq_bytes=read_set.uncompressed_fastq_bytes())


def _as_consensus(reference) -> np.ndarray:
    """Normalize a reference spec into consensus base codes.

    Accepts an array of A/C/G/T codes or a path to a plain-ACGT text
    file (the ``sage compress`` consensus file format).
    """
    if isinstance(reference, (str, Path)):
        text = Path(reference).read_text(encoding="ascii") \
            .strip().replace("\n", "")
        return seqmod.encode(text)
    return np.asarray(reference, dtype=np.uint8)


class SAGeDataset:
    """One session over a SAGe-compressed read set.

    Construct with :meth:`from_fastq` (compress a source) or
    :meth:`open` (load an archive; usable as a context manager).  The
    dataset owns the engine wiring: streaming iteration
    (:meth:`blocks` / :meth:`reads`), FASTQ export (:meth:`to_fastq`),
    sink analysis (:meth:`analyze`, :meth:`pipe`), and persistence
    (:meth:`save`).  ``options`` (:class:`EngineOptions`) set the
    session's parallelism once instead of per call.
    """

    def __init__(self, archive: SAGeArchive, *,
                 options: EngineOptions | None = None,
                 path: str | Path | None = None,
                 decompressor: SAGeDecompressor | None = None,
                 source_totals: SourceTotals | None = None):
        if not isinstance(archive, SAGeArchive):
            raise TypeError(
                f"SAGeDataset wraps a SAGeArchive, got {type(archive)!r}")
        self._archive = archive
        self.options = options if options is not None else EngineOptions()
        self.path = Path(path) if path is not None else None
        self.source_totals = source_totals
        self._decompressor = decompressor
        self._last_executor: StreamExecutor | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_fastq(cls, source, *, reference,
                   options: EngineOptions | None = None,
                   config: SAGeConfig | None = None) -> "SAGeDataset":
        """Compress ``source`` against ``reference`` into a dataset.

        ``source`` may be a FASTQ file path (streamed, never
        materialized when blocking), a :class:`ReadSet`, or an iterable
        of pre-chunked :class:`ReadSet` blocks (each chunk becomes one
        independently decodable block).  ``reference`` is an array of
        consensus base codes or a path to an ACGT text file.  ``config``
        overrides the :class:`SAGeConfig` derived from ``options``.
        """
        options = options if options is not None else EngineOptions()
        consensus = _as_consensus(reference)
        cfg = config if config is not None else options.compressor_config()
        totals: SourceTotals | None = None

        if isinstance(source, ReadSet):
            totals = _totals_of(source)
            if options.blocked:
                archive = BlockCompressor(consensus, cfg,
                                          options=options).compress(source)
            else:
                archive = SAGeCompressor(consensus, cfg).compress(source)
        elif isinstance(source, (str, Path)):
            if options.blocked:
                archive, totals = cls._compress_stream(
                    fastq.iter_read_sets(source,
                                         options.effective_block_reads),
                    consensus, cfg, options)
            else:
                read_set = fastq.read_file(source)
                totals = _totals_of(read_set)
                archive = SAGeCompressor(consensus, cfg).compress(read_set)
        else:
            # Pre-chunked stream: one block per yielded ReadSet.
            archive, totals = cls._compress_stream(source, consensus,
                                                   cfg, options)
        return cls(archive, options=options, source_totals=totals)

    @staticmethod
    def _compress_stream(chunks: Iterable[ReadSet],
                         consensus: np.ndarray, config: SAGeConfig,
                         options: EngineOptions
                         ) -> tuple[SAGeArchive, SourceTotals]:
        counted = {"reads": 0, "bases": 0, "fastq": 0}

        def accounted() -> Iterator[ReadSet]:
            for chunk in chunks:
                counted["reads"] += len(chunk)
                counted["bases"] += chunk.total_bases
                counted["fastq"] += chunk.uncompressed_fastq_bytes()
                yield chunk

        archive = BlockCompressor(consensus, config, options=options) \
            .compress(accounted())
        return archive, SourceTotals(reads=counted["reads"],
                                     bases=counted["bases"],
                                     fastq_bytes=counted["fastq"])

    @classmethod
    def open(cls, path: str | Path, *,
             options: EngineOptions | None = None) -> "SAGeDataset":
        """Open an archive file as a dataset session.

        The file is memory-mapped, not read: opening touches only the
        global header, consensus, and block index, and each block's
        payload bytes are faulted in (zero-copy) the first time that
        block is accessed.  A streaming pass over the archive therefore
        peaks far below the archive size, and the process-backend
        executor ships per-block *descriptors* to workers instead of
        payload bytes.  Usable as a context manager; :meth:`close`
        releases the mapping.
        """
        return cls(SAGeArchive.open(path), options=options, path=path)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "SAGeDataset":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """End the session: release cached decoders, executors, and —
        for archives opened from a file — the memory mapping.  Blocks
        already parsed stay usable (they hold their own bytes); blocks
        never touched are no longer reachable after close.

        Contract: idempotent and safe to call from any thread, even
        while other threads are decoding.  An in-flight
        ``decode_block`` either completes normally (it sliced its
        payload before the close) or fails with a typed
        :class:`~repro.core.errors.ContainerError` naming the closed
        archive — it never crashes the process or corrupts output.  New
        calls after close fail fast via :meth:`_require_open` with
        ``ValueError("dataset session is closed")``.  This is what
        allows a server to close a dataset during shutdown without
        fencing its worker threads first.
        """
        self._closed = True
        self._decompressor = None
        self._last_executor = None
        self._archive.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise ValueError("dataset session is closed")

    # ------------------------------------------------------------------
    # Archive views
    # ------------------------------------------------------------------

    @property
    def archive(self) -> SAGeArchive:
        """The underlying in-memory archive."""
        return self._archive

    @property
    def n_reads(self) -> int:
        return self._archive.n_reads

    @property
    def n_blocks(self) -> int:
        return self._archive.n_blocks

    @property
    def format_version(self) -> int:
        """Container version the archive was loaded from (2, 3 or 4)."""
        return self._archive.source_version

    @property
    def consensus(self) -> np.ndarray:
        """The unpacked consensus — also the default mapping reference."""
        return self.decompressor().consensus

    def decompressor(self) -> SAGeDecompressor:
        """The session's (cached) decoder, on the session codec kernel."""
        self._require_open()
        if self._decompressor is None:
            self._decompressor = SAGeDecompressor(
                self._archive, codec=self.options.codec)
        return self._decompressor

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_bytes(self, *, version: int | None = None) -> bytes:
        """Serialize the archive.

        ``version`` picks the container layout explicitly; ``None``
        defers to ``options.format_version`` (``0`` = preserve a loaded
        archive's version, write the checksummed v4 for newly built
        archives).
        """
        if version is None:
            version = self.options.format_version or None
        return self._archive.to_bytes(version)

    def save(self, path: str | Path, *,
             version: int | None = None) -> int:
        """Write the archive to ``path`` atomically; returns the byte
        count.

        The blob goes through :func:`atomic_write_bytes` — same-dir
        temp file, fsync, then :func:`os.replace` — so a crash mid-save
        never leaves a half archive behind.
        """
        self._require_open()
        blob = self.to_bytes(version=version)
        atomic_write_bytes(path, blob)
        self.path = Path(path)
        return len(blob)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def verify(self, *, deep: bool = False) -> VerifyReport:
        """Check the archive's integrity digests (and optionally decode).

        The checksum walk never raises on damage — every mismatch is
        localized in the returned :class:`VerifyReport`.  Pre-v4
        archives carry no digests and report ``"unchecked"``.
        ``deep=True`` additionally decodes every block with the session
        codec, catching damage a digest cannot see (or that pre-v4
        layouts cannot detect); decode failures land in
        ``report.errors`` keyed by block index.
        """
        self._require_open()
        digests = self._archive.verify_checksums()
        errors: dict[int, Exception] = {}
        blocks = list(digests["blocks"])
        if deep:
            decoder = self.decompressor()
            for index in range(self._archive.n_blocks):
                try:
                    decoder.decompress_block(index)
                except SAGeError as exc:
                    errors[index] = exc
                    blocks[index] = "failed"
                else:
                    # A successful full decode verifies the block even
                    # when the layout carries no digest (pre-v4).
                    blocks[index] = "ok"
                finally:
                    # Deep verify walks every block; keep at most one
                    # parsed at a time so an mmap-backed archive stays
                    # O(block) resident, not O(archive).
                    self._archive.release_block(index)
        return VerifyReport(format_version=self.format_version,
                            header=digests["header"],
                            consensus=digests["consensus"],
                            blocks=tuple(blocks), deep=deep,
                            errors=errors)

    def salvage(self, *, options: EngineOptions | None = None
                ) -> SalvageReport:
        """Recover every intact block from a (possibly damaged) archive.

        Runs a streaming decode under ``on_error="salvage"``: each
        failing block is retried (last attempt on the ``python``
        reference kernel) and, if unrecoverable, recorded as a
        :class:`BlockGap` instead of killing the stream.  Returns the
        recovered reads plus per-block loss accounting.
        """
        self._require_open()
        options = (options or self.options).replace(on_error="salvage")
        executor = self._make_executor(options)
        sink = CollectSink()
        [read_set] = executor.run(sink)
        return SalvageReport(
            read_set=read_set, n_blocks=self._archive.n_blocks,
            blocks_recovered=executor.stats.blocks,
            gaps=tuple(executor.stats.gaps))

    # ------------------------------------------------------------------
    # Streaming decode
    # ------------------------------------------------------------------

    def _make_executor(self, options: EngineOptions | None = None
                       ) -> StreamExecutor:
        self._require_open()
        executor = StreamExecutor(
            self._archive, options=options or self.options,
            decompressor=self.decompressor())
        self._last_executor = executor
        return executor

    @property
    def stats(self) -> ExecutorStats | None:
        """Accounting of the most recent streaming pass (or ``None``)."""
        return self._last_executor.stats if self._last_executor else None

    def blocks(self, *, options: EngineOptions | None = None
               ) -> Iterator[ReadSet]:
        """Yield each block's reads in index order (streaming decode).

        With ``workers > 1`` in the session options, block *i* is
        consumed while blocks *i+1 … i+window* are still decoding;
        output is identical for every configuration.
        """
        return iter(self._make_executor(options))

    def reads(self, *, options: EngineOptions | None = None
              ) -> Iterator[Read]:
        """Yield every read, flattened across the block stream."""
        for block in self.blocks(options=options):
            yield from block

    def read_set(self, *, options: EngineOptions | None = None) -> ReadSet:
        """Materialize the whole dataset as one :class:`ReadSet`."""
        self._require_open()
        return self.decompressor().decompress(
            options=options or self.options)

    def decode_block(self, index: int) -> ReadSet:
        """Random access: decode only block ``index``."""
        return self.decompressor().decompress_block(index)

    def to_fastq(self, target, *,
                 options: EngineOptions | None = None) -> int:
        """Stream the dataset out as FASTQ; returns the read count.

        ``target`` is a path or an open text handle.  Blocks are
        written as they decode — the dataset is never materialized.
        """
        self._require_open()
        if isinstance(target, (str, Path)):
            with open(target, "w", encoding="ascii") as handle:
                return self.to_fastq(handle, options=options)
        [n_reads] = self._make_executor(options).run(FastqSink(target))
        return n_reads

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def analyze(self, *sinks, options: EngineOptions | None = None) -> list:
        """One streaming pass through ``sinks``; returns their results.

        Each sink may be a registered name (``"property"``,
        ``"mapping-rate"``, …), a :class:`Sink` object, or a per-block
        callable.  All sinks share a single decode pass: analysis of
        block *i* overlaps the decode of later blocks.  Defaults to the
        ``property`` sink when called with no arguments.
        """
        specs = sinks or ("property",)
        return self.pipe(*specs).run(options=options)

    def pipe(self, *sinks) -> "Pipeline":
        """Start a fluent sink pipeline: ``ds.pipe(a).pipe(b).run()``."""
        self._require_open()
        return Pipeline(self, [resolve_sink(self, s) for s in sinks])


class Pipeline:
    """A fluent, single-pass sink pipeline over one dataset.

    Built by :meth:`SAGeDataset.pipe`; every ``pipe`` call appends a
    sink (name, :class:`Sink`, or callable) and :meth:`run` drives one
    streaming decode through all of them, returning their results in
    order.  Executor accounting of the pass lands in :attr:`stats`.
    """

    def __init__(self, dataset: SAGeDataset, sinks: list[Sink]):
        self._dataset = dataset
        self._sinks = list(sinks)
        self.stats: ExecutorStats | None = None

    def pipe(self, *sinks) -> "Pipeline":
        self._sinks.extend(resolve_sink(self._dataset, s) for s in sinks)
        return self

    def run(self, *, options: EngineOptions | None = None) -> list:
        if not self._sinks:
            raise ValueError("pipeline has no sinks; call .pipe(...) "
                             "before .run()")
        executor = self._dataset._make_executor(options)
        results = executor.run(*self._sinks)
        self.stats = executor.stats
        return results
