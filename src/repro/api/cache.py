"""Decoded-block caching and request coalescing primitives.

The serve layer (:mod:`repro.serve`) — and, later, a sharded
``SAGeCorpus`` — repeatedly answers the same question: *the decoded
form of block i of archive A under stream selection S*.  Answering it
twice wastes the numpy decode; answering it twice **concurrently**
wastes it twice at once.  This module holds the two primitives that
close both gaps, deliberately free of any HTTP or asyncio dependency
so every consumer (event loop, thread pool, plain synchronous code)
shares one implementation:

:class:`DecodedBlockCache`
    A bytes-bounded, thread-safe LRU.  Entries are keyed by an opaque
    hashable — the convention is ``(archive, block, selection_token)``
    (see ``StreamSelection.cache_token``) — and charged their *decoded*
    size, not their compressed size, so the budget reflects resident
    memory.  Hit/miss/evict accounting lives on :attr:`~DecodedBlockCache.stats`.

:class:`SingleFlight`
    Duplicate-suppression for in-flight work: the first caller to
    :meth:`~SingleFlight.begin` a key becomes the *leader* and performs
    the computation; every concurrent caller for the same key gets the
    leader's :class:`concurrent.futures.Future` to wait on instead of
    recomputing.  Failures propagate to all waiters and are **not**
    cached — the next request retries.

:func:`decoded_nbytes`
    The size model the cache is charged with: actual array bytes of a
    decoded :class:`~repro.genomics.reads.ReadSet` plus a small
    per-read object overhead.  Its static counterpart —
    :meth:`repro.core.container.SAGeBlock.decoded_nbytes_estimate` —
    prices a block *without* decoding it, which is how a server sizes
    this cache up front.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Hashable

__all__ = ["CacheStats", "DecodedBlockCache", "READ_OVERHEAD_BYTES",
           "SingleFlight", "decoded_nbytes"]

#: Approximate per-read Python object overhead (Read + two array
#: wrappers), shared with ``SAGeBlock.decoded_nbytes_estimate`` so the
#: static estimate and the measured charge price the same thing.
READ_OVERHEAD_BYTES = 64


def decoded_nbytes(read_set: Any) -> int:
    """Resident size, in bytes, of a decoded read set.

    Counts the base-code and quality array payloads, the header text,
    and :data:`READ_OVERHEAD_BYTES` per read.  This is the charge a
    :class:`DecodedBlockCache` entry pays against the byte budget.
    """
    total = 0
    for read in read_set:
        total += int(read.codes.nbytes) + READ_OVERHEAD_BYTES
        if read.quality is not None:
            total += int(read.quality.nbytes)
        total += len(read.header)
    return total


@dataclass
class CacheStats:
    """Lookup and occupancy accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Values larger than the whole cache budget are not stored at all.
    rejected: int = 0
    current_bytes: int = 0
    peak_bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "rejected": self.rejected,
                "current_bytes": self.current_bytes,
                "peak_bytes": self.peak_bytes,
                "hit_rate": round(self.hit_rate, 4)}


class DecodedBlockCache:
    """A bytes-bounded, thread-safe LRU over decoded blocks.

    ``capacity_bytes`` bounds the *sum of the charged sizes* of the
    cached values, not their count: a fleet of small blocks and a
    handful of large ones compete for the same resident budget.  A
    value charged more than the whole capacity is rejected outright
    (counted in ``stats.rejected``) instead of evicting everything for
    a single entry.

    All methods are safe to call from any thread; the cache never
    invokes user code under its lock.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(
                f"cache capacity must be >= 0 bytes, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._lock = threading.Lock()
        #: key -> (value, charged_nbytes); insertion order == LRU order.
        self._entries: "OrderedDict[Hashable, tuple[Any, int]]" = \
            OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        # A pure membership probe: no stats, no recency update.
        with self._lock:
            return key in self._entries

    @property
    def current_bytes(self) -> int:
        return self.stats.current_bytes

    def get(self, key: Hashable) -> Any | None:
        """The cached value for ``key`` (refreshing its recency), or
        ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry[0]

    def put(self, key: Hashable, value: Any, nbytes: int) -> bool:
        """Store ``value`` charged at ``nbytes``; returns whether it was
        cached.  Evicts least-recently-used entries until the budget
        holds; replaces an existing entry for ``key`` in place."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"entry size must be >= 0, got {nbytes}")
        with self._lock:
            if nbytes > self.capacity_bytes:
                self.stats.rejected += 1
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self.stats.current_bytes -= old[1]
            while self._entries and \
                    self.stats.current_bytes + nbytes > self.capacity_bytes:
                _, (_, dropped) = self._entries.popitem(last=False)
                self.stats.current_bytes -= dropped
                self.stats.evictions += 1
            self._entries[key] = (value, nbytes)
            self.stats.current_bytes += nbytes
            self.stats.peak_bytes = max(self.stats.peak_bytes,
                                        self.stats.current_bytes)
            return True

    def pop(self, key: Hashable) -> Any | None:
        """Remove and return ``key``'s value (``None`` when absent)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return None
            self.stats.current_bytes -= entry[1]
            return entry[0]

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped.  Lookup
        statistics are preserved — clearing resets *contents*, not
        history."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.current_bytes = 0
            return dropped

    def keys(self) -> list:
        """Current keys in LRU order (least recently used first)."""
        with self._lock:
            return list(self._entries)


class SingleFlight:
    """Coalesce concurrent computations of the same key into one.

    Usage (explicit, for event loops that must not block a thread)::

        future, leader = flights.begin(key)
        if not leader:
            value = future.result()        # or await asyncio.wrap_future
        else:
            try:
                value = compute()
            except BaseException as exc:
                flights.reject(key, exc)   # wakes every waiter with exc
                raise
            flights.resolve(key, value)

    or the synchronous convenience :meth:`run`, which wraps exactly
    that protocol.  Outcomes — success or failure — are delivered to
    every waiter registered before ``resolve``/``reject`` and then
    forgotten: single-flight deduplicates *in-flight* work only;
    memoization is the cache's job.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, Future] = {}
        #: Total calls that joined another caller's in-flight compute.
        self.coalesced = 0

    def begin(self, key: Hashable) -> "tuple[Future, bool]":
        """Claim ``key``: returns ``(future, is_leader)``.

        The leader must later call :meth:`resolve` or :meth:`reject`
        exactly once; non-leaders wait on the returned future.
        """
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                self.coalesced += 1
                return future, False
            future = Future()
            self._inflight[key] = future
            return future, True

    def resolve(self, key: Hashable, value: Any) -> None:
        """Deliver the leader's result to every waiter and retire the
        key."""
        with self._lock:
            future = self._inflight.pop(key)
        future.set_result(value)

    def reject(self, key: Hashable, exc: BaseException) -> None:
        """Deliver the leader's failure to every waiter and retire the
        key — the *next* ``begin`` for it starts a fresh computation."""
        with self._lock:
            future = self._inflight.pop(key)
        future.set_exception(exc)

    def run(self, key: Hashable, fn: Callable[[], Any]) -> Any:
        """Compute ``fn()`` once per concurrent burst of ``key``.

        The leader executes ``fn`` on the calling thread; every other
        concurrent caller blocks until the leader finishes and receives
        the same result (or the same exception).
        """
        future, leader = self.begin(key)
        if not leader:
            return future.result()
        try:
            value = fn()
        except BaseException as exc:
            self.reject(key, exc)
            raise
        self.resolve(key, value)
        return value

    @property
    def inflight(self) -> int:
        """Number of keys currently being computed."""
        with self._lock:
            return len(self._inflight)
