"""repro.api — the :class:`SAGeDataset` session facade.

One stable API over archives, streams, sinks and engine options: the
CLI, the examples, the benchmarks, the end-to-end model and the
hardware verification all sit on this package instead of re-wiring the
compressor/decompressor/executor plumbing themselves.

    from repro.api import EngineOptions, SAGeDataset

    ds = SAGeDataset.from_fastq("in.fastq", reference="ref.txt",
                                options=EngineOptions(workers=4,
                                                      block_reads=4096))
    ds.save("reads.sage")
    with SAGeDataset.open("reads.sage") as ds:
        report, rate = ds.pipe("property").pipe("mapping-rate").run()
"""

from .._compat import reset_deprecation_warnings
from ..core.errors import (BlockDecodeError, CorruptArchiveError,
                           SAGeError, TruncatedArchiveError)
from ..core.selection import STREAM_GROUPS, StreamSelection
from .cache import (CacheStats, DecodedBlockCache, SingleFlight,
                    decoded_nbytes)
from .dataset import (Pipeline, SAGeDataset, SalvageReport, SourceTotals,
                      VerifyReport, atomic_write_bytes)
from .options import ON_ERROR, EngineOptions, resolve_stream_options
from .sinks import (CallableSink, available_sinks, make_sink,
                    register_sink, result_info, unregister_sink)

__all__ = [
    "BlockDecodeError", "CacheStats", "CallableSink",
    "CorruptArchiveError", "DecodedBlockCache", "EngineOptions",
    "ON_ERROR", "Pipeline", "STREAM_GROUPS", "SAGeDataset", "SAGeError",
    "SalvageReport", "SingleFlight", "SourceTotals", "StreamSelection",
    "TruncatedArchiveError", "VerifyReport", "atomic_write_bytes",
    "available_sinks", "decoded_nbytes", "make_sink", "register_sink",
    "reset_deprecation_warnings", "result_info",
    "resolve_stream_options", "unregister_sink",
]
