"""Named sink registry and adapters for the :class:`SAGeDataset` facade.

Sinks are the pipelined consumers of the streaming decode
(:class:`repro.pipeline.executor.Sink`).  The registry maps short names
to factories so callers — most prominently ``sage analyze --sink NAME``
— can resolve an analysis by name instead of wiring mapper/reference
plumbing themselves.  A factory receives the dataset being analyzed and
returns a fresh sink bound to it (e.g. to the archive's own consensus).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..pipeline.executor import (CollectSink, MappingRateSink,
                                 PropertySink, Sink)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dataset import SAGeDataset

__all__ = ["CallableSink", "SinkFactory", "available_sinks", "make_sink",
           "register_sink", "resolve_sink", "result_info",
           "unregister_sink"]

SinkFactory = Callable[["SAGeDataset"], Sink]

_REGISTRY: dict[str, SinkFactory] = {}


def register_sink(name: str, factory: SinkFactory, *,
                  replace: bool = False) -> None:
    """Register ``factory`` under ``name``.

    ``factory(dataset)`` must return a fresh object satisfying the
    :class:`Sink` protocol.  Re-registering an existing name raises
    unless ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"sink name must be a non-empty string, "
                         f"got {name!r}")
    if not callable(factory):
        raise ValueError(f"sink factory for {name!r} must be callable")
    if not replace and name in _REGISTRY:
        raise ValueError(f"sink {name!r} is already registered "
                         f"(pass replace=True to override)")
    _REGISTRY[name] = factory


def unregister_sink(name: str) -> None:
    """Remove ``name`` from the registry (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def available_sinks() -> tuple[str, ...]:
    """Registered sink names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_sink(name: str, dataset: "SAGeDataset") -> Sink:
    """Instantiate the sink registered under ``name`` for ``dataset``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown sink {name!r}; available: "
            f"{', '.join(available_sinks()) or '(none)'}") from None
    return factory(dataset)


class CallableSink:
    """Adapts a plain per-block callable into the :class:`Sink` protocol.

    ``fn(block)`` is invoked once per decoded :class:`ReadSet` block in
    index order; ``finish()`` returns the list of per-block return
    values.  This is what lets ``dataset.pipe(lambda block: ...)``
    accept bare callables.
    """

    #: A bare callable's needs are unknown: request the full decode.
    #: Wrap in a sink with a narrower ``requires`` (or set
    #: ``EngineOptions.streams``) to opt into selective decode.
    requires = None

    def __init__(self, fn: Callable[[Any], Any]) -> None:
        self._fn = fn
        self._results: list[Any] = []

    def consume(self, index: int, block: Any) -> None:
        self._results.append(self._fn(block))

    def finish(self) -> list[Any]:
        return self._results


def _property_info(report: Any) -> dict:
    """JSON rendering of a ``property`` sink result."""
    mismatch_hist = report.mismatch_count_hist()
    return {
        "n_reads": report.n_reads,
        "n_mapped": report.n_reads - report.n_unmapped,
        "n_unmapped": report.n_unmapped,
        "n_chimeric": report.n_chimeric,
        "mapping_rate": (report.n_reads - report.n_unmapped)
        / max(1, report.n_reads),
        "mismatch_pos_bitcount_hist":
            report.mismatch_pos_bitcount_hist().tolist(),
        "mismatch_count_hist": mismatch_hist.tolist(),
        "matching_pos_bitcount_fractions":
            [round(float(f), 6) for f in
             report.matching_pos_bitcount_fractions()],
    }


def _mapping_info(rate: Any) -> dict:
    """JSON rendering of a ``mapping-rate`` sink result."""
    return {"n_reads": rate.n_reads, "n_mapped": rate.n_mapped,
            "n_unmapped": rate.n_unmapped,
            "mapping_rate": rate.mapping_rate}


def result_info(result: Any) -> dict:
    """JSON-serializable rendering of any registered sink's result.

    The shared presentation layer for ``sage analyze --json`` and the
    serve endpoint ``POST /analyze``: built-in report objects get
    structured summaries, a collected :class:`ReadSet` gets counts, and
    anything else falls back to ``str``.
    """
    from ..genomics.reads import ReadSet

    if hasattr(result, "mismatch_count_hist"):      # PropertyReport
        return _property_info(result)
    if hasattr(result, "mapping_rate"):             # MappingRateReport
        return _mapping_info(result)
    if isinstance(result, ReadSet):                 # collect
        return {"n_reads": len(result),
                "total_bases": result.total_bases}
    return {"result": str(result)}


def resolve_sink(dataset: "SAGeDataset", spec: Any) -> Sink:
    """Turn a sink spec (name, sink object, or callable) into a sink."""
    if isinstance(spec, str):
        return make_sink(spec, dataset)
    if isinstance(spec, Sink):
        return spec
    if callable(spec):
        return CallableSink(spec)
    raise TypeError(f"cannot use {spec!r} as a sink: expected a "
                    f"registered name, a Sink, or a callable")


# ----------------------------------------------------------------------
# Built-in sinks.  Analysis sinks map against the dataset's own
# consensus, so they run straight off the compressed blob with no side
# files — the paper's "directly analyzable" property.
# ----------------------------------------------------------------------

register_sink("property", lambda dataset: PropertySink(dataset.consensus))
register_sink("mapping-rate",
              lambda dataset: MappingRateSink(dataset.consensus))
register_sink("collect", lambda dataset: CollectSink())
