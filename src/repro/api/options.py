"""Engine configuration: one validated options object for every path.

:class:`EngineOptions` replaces the ``workers=`` / ``backend=`` /
``prefetch=`` / ``block_reads=`` keyword sprawl that used to be
duplicated across :mod:`repro.core.blocks`,
:mod:`repro.core.decompressor`, :mod:`repro.pipeline.executor` and the
CLI.  Every engine constructs (or receives) an ``EngineOptions`` and all
validation happens here, in ``__post_init__`` — bad values fail at the
API boundary with a clear :class:`ValueError` instead of deep inside a
worker pool.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from .._compat import warn_once
from ..core.blocks import BACKENDS, DEFAULT_BLOCK_READS, INFLIGHT_PER_WORKER
from ..core.compressor import SAGeConfig
from ..core.kernels import available_kernels
from ..core.mismatch import OptLevel
from ..core.selection import STREAM_GROUPS, StreamSelection
from ..mapping.batch import available_mappers

__all__ = ["EngineOptions", "ON_ERROR", "resolve_stream_options"]

#: Recognized streaming-decode failure policies.
ON_ERROR = ("raise", "skip", "salvage")


@dataclass(frozen=True)
class EngineOptions:
    """Session-wide engine knobs, validated on construction.

    Parameters
    ----------
    workers:
        Worker processes for block compression / parallel block decode.
        ``1`` is the serial reference path; every value produces
        byte-identical output.
    backend:
        Decode backend, one of :data:`repro.core.blocks.BACKENDS`
        (``auto`` picks ``serial`` for one worker, ``process``
        otherwise).
    prefetch:
        In-flight blocks per worker (``None`` = the engine-wide
        ``INFLIGHT_PER_WORKER`` default).
    block_reads:
        Reads per independently decodable block when compressing.
        ``0`` writes a flat single-section archive unless ``workers``
        forces blocking (then :data:`DEFAULT_BLOCK_READS` applies).
    level:
        Optimization level (an :class:`OptLevel` or its name, e.g.
        ``"O4"``).
    long_reads:
        Force the long-read encoding paths (``None`` = auto-detect).
    with_quality:
        Keep quality scores when compressing.
    codec:
        Codec kernel for the array-stream encode/decode hot path, one
        of :func:`repro.core.kernels.available_kernels` (``python`` =
        bit-serial reference, ``numpy`` = vectorized batch kernel).
        ``auto`` resolves through ``$SAGE_CODEC`` to the registry
        default.  Archives are byte-identical across kernels — this is
        a pure-speed knob.
    mapper:
        Mapper kernel for the read→consensus mismatch-finding hot path,
        one of :func:`repro.mapping.batch.available_mappers`
        (``python`` = scalar seed-chain-extend reference, ``numpy`` =
        vectorized batch mapper with the bit-parallel pre-alignment
        filter).  ``auto`` resolves through ``$SAGE_MAPPER`` to the
        registry default.  Archives are byte-identical across mappers —
        like ``codec``, a pure-speed knob.
    on_error:
        Streaming-decode failure policy, one of :data:`ON_ERROR`.
        ``"raise"`` (default) propagates the first block failure;
        ``"skip"`` drops failed blocks and records a
        :class:`~repro.pipeline.executor.BlockGap`; ``"salvage"``
        additionally re-decodes each failed block with the ``python``
        reference kernel before giving up, recovering every block the
        damage did not actually touch.
    block_retries:
        Serial in-parent re-decode attempts for a block that failed in
        a worker pool (rescues worker crashes / broken pools /
        timeouts) before the ``on_error`` policy applies.
    block_timeout:
        Per-block decode timeout in seconds for pooled backends
        (``None`` = no limit; the serial backend cannot time out).
    format_version:
        Container version ``SAGeDataset.save``/``to_bytes`` write:
        ``4`` (checksummed), ``3`` (pre-checksum layout), or ``0`` =
        auto (preserve a loaded archive's version; write 4 for newly
        built archives).
    streams:
        Explicit stream-selective decode override: a tuple of stream
        group names from
        :data:`repro.core.selection.STREAM_GROUPS`
        (``sequence``/``quality``/``headers``/``order``).  ``None``
        (default) lets each consumer decide — the streaming executor
        unions the attached sinks' ``requires`` declarations, and
        direct decodes take everything.  Groups not listed are skipped
        outright at decode time (lazy, not decoded-and-dropped).
    """

    workers: int = 1
    backend: str = "auto"
    prefetch: int | None = None
    block_reads: int = 0
    level: OptLevel | str = OptLevel.O4
    long_reads: bool | None = None
    with_quality: bool = True
    codec: str = "auto"
    mapper: str = "auto"
    on_error: str = "raise"
    block_retries: int = 1
    block_timeout: float | None = None
    format_version: int = 0
    streams: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if isinstance(self.level, str):
            try:
                object.__setattr__(self, "level", OptLevel[self.level])
            except KeyError:
                names = [lvl.name for lvl in OptLevel]
                raise ValueError(
                    f"unknown optimization level {self.level!r}; "
                    f"expected one of {names}") from None
        elif not isinstance(self.level, OptLevel):
            raise ValueError(
                f"level must be an OptLevel or its name, "
                f"got {self.level!r}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"expected one of {BACKENDS}")
        if self.prefetch is not None and self.prefetch < 1:
            raise ValueError(
                f"prefetch must be >= 1 (or None for the default), "
                f"got {self.prefetch!r}")
        if self.block_reads < 0:
            raise ValueError(
                f"block_reads must be >= 0 (0 = flat single-section "
                f"archive), got {self.block_reads!r}")
        if self.codec != "auto" and self.codec not in available_kernels():
            raise ValueError(
                f"unknown codec {self.codec!r}; expected 'auto' or one "
                f"of {available_kernels()}")
        if self.mapper != "auto" and self.mapper not in available_mappers():
            raise ValueError(
                f"unknown mapper {self.mapper!r}; expected 'auto' or one "
                f"of {available_mappers()}")
        if self.on_error not in ON_ERROR:
            raise ValueError(f"unknown on_error {self.on_error!r}; "
                             f"expected one of {ON_ERROR}")
        if self.block_retries < 0:
            raise ValueError(f"block_retries must be >= 0, "
                             f"got {self.block_retries!r}")
        if self.block_timeout is not None and self.block_timeout <= 0:
            raise ValueError(
                f"block_timeout must be > 0 seconds (or None for no "
                f"limit), got {self.block_timeout!r}")
        if self.format_version not in (0, 3, 4):
            raise ValueError(
                f"format_version must be 0 (auto), 3, or 4, "
                f"got {self.format_version!r}")
        if self.streams is not None:
            if isinstance(self.streams, str):
                streams: tuple[str, ...] = (self.streams,)
            else:
                streams = tuple(self.streams)
            for name in streams:
                if name not in STREAM_GROUPS:
                    raise ValueError(
                        f"unknown stream group {name!r}; expected a "
                        f"subset of {STREAM_GROUPS}")
            # Normalizing to STREAM_GROUPS order also validates the
            # quality-requires-sequence invariant (from_spec raises).
            object.__setattr__(
                self, "streams", StreamSelection.from_spec(streams).names)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def blocked(self) -> bool:
        """Whether compression should produce a multi-block archive."""
        return self.block_reads > 0 or self.workers > 1

    @property
    def effective_block_reads(self) -> int:
        """Reads per block once blocking is decided (never 0)."""
        return self.block_reads or DEFAULT_BLOCK_READS

    @property
    def effective_prefetch(self) -> int:
        """In-flight blocks per worker with the default filled in."""
        return self.prefetch if self.prefetch is not None \
            else INFLIGHT_PER_WORKER

    @property
    def window(self) -> int:
        """Maximum blocks in flight (submitted but not yet consumed)."""
        return max(1, self.workers * self.effective_prefetch)

    def replace(self, **changes: Any) -> "EngineOptions":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def compressor_config(self, **overrides: Any) -> SAGeConfig:
        """A :class:`SAGeConfig` reflecting these options.

        Only the fields EngineOptions carries are set; everything else
        keeps the :class:`SAGeConfig` defaults (override via kwargs).
        """
        kwargs: dict[str, Any] = dict(
            level=self.level, with_quality=self.with_quality,
            long_reads=self.long_reads, codec=self.codec,
            mapper_kernel=self.mapper)
        kwargs.update(overrides)
        return SAGeConfig(**kwargs)

    @classmethod
    def from_archive(cls, archive: Any) -> "EngineOptions":
        """The options an existing archive reflects (``inspect`` echo).

        Session-only knobs (workers/backend/prefetch) keep their
        defaults; the archive-recorded ones (level, block partition,
        long-read mode, quality presence) are read back.
        """
        return cls(block_reads=archive.block_reads, level=archive.level,
                   long_reads=archive.long_reads,
                   with_quality=archive.block(0).quality is not None)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly rendering (``sage inspect --json`` echo)."""
        return {
            "workers": self.workers,
            "backend": self.backend,
            "prefetch": self.prefetch,
            "block_reads": self.block_reads,
            "level": self.level.name,
            "long_reads": self.long_reads,
            "with_quality": self.with_quality,
            "codec": self.codec,
            "mapper": self.mapper,
            "on_error": self.on_error,
            "block_retries": self.block_retries,
            "block_timeout": self.block_timeout,
            "format_version": self.format_version,
            "streams": list(self.streams) if self.streams is not None
            else None,
        }


def resolve_stream_options(options: EngineOptions | None = None, *,
                           workers: int | None = None,
                           backend: str | None = None,
                           prefetch: int | None = None,
                           caller: str) -> EngineOptions:
    """Fold legacy streaming kwargs into an :class:`EngineOptions`.

    The shared deprecation shim of the decode-side entry points
    (``SAGeDecompressor.decompress`` / ``iter_block_read_sets``,
    ``StreamExecutor``, ``stream_read_sets``): explicit legacy kwargs
    still work but warn once per caller, and validation always runs
    through :class:`EngineOptions`.
    """
    if workers is None and backend is None and prefetch is None:
        return options if options is not None else EngineOptions()
    if options is not None:
        raise ValueError(
            f"{caller}: pass either options= or the legacy "
            f"workers/backend/prefetch kwargs, not both")
    warn_once(
        f"{caller}:stream-kwargs",
        f"{caller}(workers=..., backend=..., prefetch=...) is "
        f"deprecated; pass repro.api.EngineOptions(...) via options= "
        f"instead", stacklevel=4)
    return EngineOptions(workers=1 if workers is None else workers,
                         backend="auto" if backend is None else backend,
                         prefetch=prefetch)
