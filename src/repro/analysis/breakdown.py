"""Optimization-level ablation — Fig. 17.

Compresses one read set at every optimization level NO, O1..O4 and
reports the mismatch-information size breakdown per level, normalized to
the unoptimized total, exactly the quantity Fig. 17 plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.compressor import SAGeCompressor, SAGeConfig
from ..core.mismatch import CATEGORIES, OptLevel, SizeBreakdown
from ..genomics.reads import ReadSet

#: Fig. 17 legend labels for each breakdown category.
FIG17_LABELS = {
    "unmapped": "Unmapped",
    "rev": "Rev",
    "read_length": "Read Length",
    "contains_n": "Contains N",
    "mismatch_bases": "Mismatch Bases",
    "mismatch_types": "Mismatch Types",
    "mismatch_pos": "Mismatch Pos.",
    "mismatch_counts": "Mismatch Counts",
    "matching_pos": "Matching Pos.",
}


@dataclass
class AblationResult:
    """Per-level size breakdowns for one read set."""

    label: str
    breakdowns: dict[OptLevel, SizeBreakdown]

    def total_bits(self, level: OptLevel) -> int:
        return self.breakdowns[level].mismatch_info_bits

    def normalized(self) -> dict[OptLevel, dict[str, float]]:
        """Category sizes per level, normalized to the NO-level total."""
        base = max(1, self.total_bits(OptLevel.NO))
        out: dict[OptLevel, dict[str, float]] = {}
        for level, breakdown in self.breakdowns.items():
            out[level] = {cat: breakdown.get(cat) / base
                          for cat in CATEGORIES}
        return out

    def reduction(self, level: OptLevel) -> float:
        """Size at ``level`` relative to the unoptimized size."""
        return self.total_bits(level) / max(1, self.total_bits(OptLevel.NO))


def run_ablation(read_set: ReadSet, reference: np.ndarray,
                 with_quality: bool = False,
                 levels: tuple[OptLevel, ...] = tuple(OptLevel),
                 label: str = "") -> AblationResult:
    """Compress at each level and collect the Fig. 17 breakdowns."""
    breakdowns: dict[OptLevel, SizeBreakdown] = {}
    for level in levels:
        config = SAGeConfig(level=level, with_quality=with_quality)
        archive = SAGeCompressor(np.asarray(reference, dtype=np.uint8),
                                 config).compress(read_set)
        breakdowns[level] = archive.breakdown
    return AblationResult(label=label or read_set.name,
                          breakdowns=breakdowns)
