"""Variant calling substrate + the §5.1.5 quality-access analysis.

The paper's argument for host-side quality-score decompression rests on
how downstream analysis uses quality scores: variant callers only read
the scores of bases *around candidate variant sites* identified during
mapping, which touches a tiny fraction of quality blocks (measured 0.03%
on average, ≤10.7% max), and host decode keeps up until ~17% of blocks
are accessed.  This module reproduces that pipeline functionally:

1. :func:`pileup` — per-consensus-position depth and alternate counts
   from lossless mappings;
2. :func:`call_variants` — a pileup variant caller (the downstream task
   of Fig. 2);
3. :func:`quality_block_access` — the fraction of the emission-ordered
   quality stream's blocks that calls actually touch;
4. :func:`host_quality_headroom` — the access fraction at which host
   quality decode would start to bottleneck the analysis pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..genomics.reads import ReadSet, iter_reads
from ..mapping.alignment import INS, SUB
from ..mapping.mapper import MapperConfig, MappingResult, ReadMapper

#: Quality block size in scores.  The paper cites 25 MB blocks on real
#: data; the default here scales to synthetic analog sizes.
DEFAULT_QUALITY_BLOCK = 4096

#: Window of quality scores consulted around each variant site.
SITE_WINDOW = 10


@dataclass
class VariantCall:
    """One called variant against the consensus."""

    position: int            # consensus coordinate
    kind: str                # 'sub' | 'ins' | 'del'
    ref_base: int
    alt_base: int            # substituted/first inserted base (-1 for del)
    depth: int
    alt_count: int

    @property
    def alt_fraction(self) -> float:
        return self.alt_count / max(1, self.depth)


@dataclass
class Pileup:
    """Per-position evidence accumulated from mappings."""

    depth: np.ndarray                 # coverage per consensus position
    alt_counts: np.ndarray            # (4, L) substitution evidence
    indel_counts: dict[tuple[int, str], int] = field(default_factory=dict)
    mappings: list[MappingResult | None] = field(default_factory=list)


def pileup(read_set: ReadSet | Iterable[ReadSet], reference: np.ndarray,
           mapper_config: MapperConfig | None = None) -> Pileup:
    """Map every read and accumulate per-position evidence.

    ``read_set`` may be a stream of :class:`ReadSet` blocks (e.g. from
    ``iter_block_read_sets``); evidence accumulates block by block and
    ``mappings`` keeps stream order, so downstream consumers see the
    same result as a whole-dataset pass.
    """
    reference = np.asarray(reference, dtype=np.uint8)
    mapper = ReadMapper(reference, mapper_config)
    depth = np.zeros(reference.size, dtype=np.int32)
    alt_counts = np.zeros((4, reference.size), dtype=np.int32)
    result = Pileup(depth=depth, alt_counts=alt_counts)

    for read in iter_reads(read_set):
        mapping = mapper.map_read(read.codes)
        result.mappings.append(None if mapping.unmapped else mapping)
        if mapping.unmapped:
            continue
        for segment in mapping.segments:
            start = segment.cons_start
            consumed = segment.length
            shift = 0
            for op in segment.ops:
                cons_pos = start + op.read_pos + shift
                if op.kind == SUB:
                    if cons_pos < reference.size and op.bases.size:
                        base = int(op.bases[0])
                        if base < 4:
                            alt_counts[base, cons_pos] += 1
                elif op.kind == INS:
                    key = (cons_pos, "ins")
                    result.indel_counts[key] = \
                        result.indel_counts.get(key, 0) + 1
                    shift -= op.length
                    consumed -= op.length
                else:
                    key = (cons_pos, "del")
                    result.indel_counts[key] = \
                        result.indel_counts.get(key, 0) + 1
                    shift += op.length
                    consumed += op.length
            stop = min(reference.size, start + max(0, consumed))
            depth[start:stop] += 1
    return result


def call_variants(read_set: ReadSet | Iterable[ReadSet],
                  reference: np.ndarray,
                  min_depth: int = 4, min_alt_fraction: float = 0.5,
                  mapper_config: MapperConfig | None = None,
                  evidence: Pileup | None = None) -> list[VariantCall]:
    """Call variants from pileup evidence (downstream analysis of Fig. 2)."""
    reference = np.asarray(reference, dtype=np.uint8)
    if evidence is None:
        evidence = pileup(read_set, reference, mapper_config)
    calls: list[VariantCall] = []

    total_alt = evidence.alt_counts.sum(axis=0)
    candidates = np.nonzero(total_alt >= 2)[0]
    for pos in candidates:
        depth = int(evidence.depth[pos])
        if depth < min_depth:
            continue
        best_base = int(np.argmax(evidence.alt_counts[:, pos]))
        alt = int(evidence.alt_counts[best_base, pos])
        if alt / depth >= min_alt_fraction:
            calls.append(VariantCall(
                position=int(pos), kind="sub",
                ref_base=int(reference[pos]), alt_base=best_base,
                depth=depth, alt_count=alt))

    for (pos, kind), count in sorted(evidence.indel_counts.items()):
        if pos >= reference.size:
            continue
        depth = int(evidence.depth[pos])
        if depth >= min_depth and count / depth >= min_alt_fraction:
            calls.append(VariantCall(
                position=int(pos), kind=kind,
                ref_base=int(reference[pos]), alt_base=-1,
                depth=depth, alt_count=count))
    calls.sort(key=lambda c: c.position)
    return calls


# ----------------------------------------------------------------------
# §5.1.5 — quality-score access analysis
# ----------------------------------------------------------------------


@dataclass
class QualityAccessReport:
    """Which quality blocks downstream analysis actually reads."""

    n_blocks: int
    accessed_blocks: int
    n_sites: int

    @property
    def fraction(self) -> float:
        return self.accessed_blocks / max(1, self.n_blocks)


def quality_block_access(read_set: ReadSet, evidence: Pileup,
                         calls: list[VariantCall],
                         block_size: int = DEFAULT_QUALITY_BLOCK,
                         window: int = SITE_WINDOW,
                         emission_order: bool = True) -> QualityAccessReport:
    """Fraction of quality blocks holding scores near variant sites.

    The quality stream concatenates per-read scores; a block is accessed
    if any contained score belongs to a read overlapping (within
    ``window``) a called variant site (§5.1.5: subsequent steps "only
    need quality scores from the positions surrounding mismatches").

    ``emission_order=True`` lays the stream out the way SAGe and Spring
    store it — reads sorted by matching position (§5.1.3) — which packs
    the reads covering one site into few, contiguous blocks.  Passing
    ``False`` models an input-ordered stream for comparison.
    """
    if not calls:
        total = max(1, -(-read_set.total_bases // block_size))
        return QualityAccessReport(total, 0, 0)

    pairs = list(zip(read_set, evidence.mappings))
    if emission_order:
        def sort_key(pair):
            mapping = pair[1]
            if mapping is None:
                return (1, 0)
            return (0, mapping.segments[0].cons_start)
        pairs.sort(key=sort_key)

    site_positions = np.array(sorted(c.position for c in calls),
                              dtype=np.int64)
    accessed: set[int] = set()
    offset = 0
    for read, mapping in pairs:
        length = len(read)
        if mapping is not None:
            for segment in mapping.segments:
                lo = segment.cons_start - window
                hi = segment.cons_start + segment.length + window
                i = np.searchsorted(site_positions, lo)
                if i < site_positions.size and site_positions[i] < hi:
                    # Read overlaps a site: its quality bytes are read.
                    first_block = offset // block_size
                    last_block = (offset + length - 1) // block_size
                    accessed.update(range(first_block, last_block + 1))
                    break
        offset += length
    total_blocks = max(1, -(-offset // block_size))
    return QualityAccessReport(total_blocks, len(accessed),
                               len(calls))


def host_quality_headroom(host_decode_bytes_per_s: float = 1.2e9,
                          analysis_bases_per_s: float = 6.92e9,
                          qual_bytes_per_base: float = 1.0) -> float:
    """Maximum accessed-fraction before host quality decode bottlenecks.

    Quality decode runs on the host, pipelined with mapping (§5.1.5);
    it stays off the critical path while
    ``fraction × total_bases × qual_bytes_per_base / host_rate <=
    total_bases / analysis_rate``.  With Spring-class quality decode
    (1.2 GB/s) against GEM (6.92 Gbase/s) this gives the paper's ~17%
    safety margin.
    """
    if host_decode_bytes_per_s <= 0 or analysis_bases_per_s <= 0:
        raise ValueError("rates must be positive")
    return host_decode_bytes_per_s / (analysis_bases_per_s
                                      * qual_bytes_per_base)
