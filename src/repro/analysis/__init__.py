"""Dataset analytics: property distributions (Figs 7/10), ablation (Fig 17)."""

from . import breakdown, properties, variants
from .breakdown import FIG17_LABELS, AblationResult, run_ablation
from .properties import PropertyAccumulator, PropertyReport, analyze
from .variants import (QualityAccessReport, VariantCall, call_variants,
                       host_quality_headroom, pileup,
                       quality_block_access)

__all__ = ["breakdown", "properties", "variants", "FIG17_LABELS",
           "AblationResult", "run_ablation", "PropertyAccumulator",
           "PropertyReport", "analyze", "QualityAccessReport",
           "VariantCall", "call_variants", "host_quality_headroom",
           "pileup", "quality_block_access"]
