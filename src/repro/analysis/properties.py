"""Dataset property analysis — the statistics behind Figs. 7 and 10.

One mapping pass over a read set produces every distribution the paper
uses to motivate its encodings: bit counts of delta-encoded mismatch
positions (Property 1), mismatch counts per read (Property 2), indel
block lengths and the bases they hold (Property 3), and bit counts of
delta-encoded matching positions after reordering (Property 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..core.tuning import bit_count_histogram
from ..genomics.reads import Read, ReadSet, iter_reads
from ..mapping.alignment import DEL, INS
from ..mapping.mapper import MapperConfig, ReadMapper


@dataclass
class PropertyReport:
    """Raw values gathered from one mapping pass."""

    mismatch_pos_deltas: np.ndarray
    mismatch_counts: np.ndarray
    indel_block_lengths: np.ndarray
    matching_pos_deltas: np.ndarray
    n_unmapped: int = 0
    n_chimeric: int = 0
    n_reads: int = 0

    # -- Fig 7(a): bit counts of delta-encoded mismatch positions ------

    def mismatch_pos_bitcount_hist(self, max_bits: int = 32) -> np.ndarray:
        return bit_count_histogram(self.mismatch_pos_deltas, max_bits)

    # -- Fig 7(b): mismatch counts per read ----------------------------

    def mismatch_count_hist(self) -> np.ndarray:
        if self.mismatch_counts.size == 0:
            return np.zeros(1, dtype=np.int64)
        return np.bincount(self.mismatch_counts)

    # -- Fig 7(c): CDF of indel block lengths ---------------------------

    def indel_length_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        lengths = np.sort(self.indel_block_lengths)
        if lengths.size == 0:
            return np.array([1]), np.array([1.0])
        unique, counts = np.unique(lengths, return_counts=True)
        return unique, np.cumsum(counts) / lengths.size

    # -- Fig 7(d): CDF of bases held by blocks of each length -----------

    def indel_bases_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        lengths = np.sort(self.indel_block_lengths)
        if lengths.size == 0:
            return np.array([1]), np.array([1.0])
        unique, counts = np.unique(lengths, return_counts=True)
        bases = unique * counts
        return unique, np.cumsum(bases) / bases.sum()

    # -- Fig 10: bit counts of delta-encoded matching positions ---------

    def matching_pos_bitcount_hist(self, max_bits: int = 32) -> np.ndarray:
        return bit_count_histogram(self.matching_pos_deltas, max_bits)

    def matching_pos_bitcount_fractions(self) -> np.ndarray:
        hist = self.matching_pos_bitcount_hist()
        total = max(1, hist.sum())
        return hist / total


class PropertyAccumulator:
    """Incremental form of :func:`analyze` for streamed read sets.

    Consumes reads (or :class:`ReadSet` blocks) one at a time — e.g. as
    a :class:`~repro.pipeline.executor.StreamExecutor` decodes them —
    and produces the same :class:`PropertyReport` a whole-dataset pass
    would.  Only the per-read statistics are retained between calls;
    the read data itself is never held.
    """

    def __init__(self, reference: np.ndarray,
                 mapper_config: MapperConfig | None = None):
        self._mapper = ReadMapper(np.asarray(reference, dtype=np.uint8),
                                  mapper_config)
        self._pos_deltas: list[int] = []
        self._counts: list[int] = []
        self._indel_lengths: list[int] = []
        self._first_positions: list[int] = []
        self._n_unmapped = 0
        self._n_chimeric = 0
        self._n_reads = 0

    def add(self, read: Read) -> None:
        """Map one read and fold its statistics in."""
        self._n_reads += 1
        mapping = self._mapper.map_read(read.codes)
        if mapping.unmapped:
            self._n_unmapped += 1
            return
        if mapping.is_chimeric:
            self._n_chimeric += 1
        self._first_positions.append(mapping.segments[0].cons_start)
        n_mismatches = 0
        for segment in sorted(mapping.segments,
                              key=lambda s: s.read_start):
            prev = 0
            for op in segment.ops:
                n_mismatches += 1
                self._pos_deltas.append(op.read_pos - prev)
                prev = op.read_pos
                if op.kind in (INS, DEL):
                    self._indel_lengths.append(op.length)
        self._counts.append(n_mismatches)

    def consume(self, reads: Iterable[Read]) -> None:
        """Fold in a batch of reads (any iterable, e.g. a block)."""
        for read in reads:
            self.add(read)

    def report(self) -> PropertyReport:
        """The distributions accumulated so far."""
        first_positions = sorted(self._first_positions)
        deltas = np.diff(np.array([0] + first_positions, dtype=np.int64))
        return PropertyReport(
            mismatch_pos_deltas=np.array(self._pos_deltas,
                                         dtype=np.int64),
            mismatch_counts=np.array(self._counts, dtype=np.int64),
            indel_block_lengths=np.array(self._indel_lengths,
                                         dtype=np.int64),
            matching_pos_deltas=deltas, n_unmapped=self._n_unmapped,
            n_chimeric=self._n_chimeric, n_reads=self._n_reads)


def analyze(reads: ReadSet | Iterable[ReadSet], reference: np.ndarray,
            mapper_config: MapperConfig | None = None) -> PropertyReport:
    """Gather the Fig. 7 / Fig. 10 statistics for a read set.

    Accepts either a materialized :class:`ReadSet` or any iterable of
    :class:`ReadSet` blocks (e.g. the streaming decoders'
    ``iter_block_read_sets``), which is analyzed without ever holding
    the whole dataset.
    """
    accumulator = PropertyAccumulator(reference, mapper_config)
    accumulator.consume(iter_reads(reads))
    return accumulator.report()
