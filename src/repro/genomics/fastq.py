"""FASTQ reading and writing.

FASTQ is the paper's input format (§2.1): four lines per read — ``@header``,
bases, ``+``, Phred+33 quality string.  The writer emits exactly that; the
parser is tolerant of a repeated header on the ``+`` line and of missing
trailing newlines.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterator, TextIO

from .reads import Read, ReadSet, partition_reads


class FastqError(ValueError):
    """Raised on malformed FASTQ input."""


def parse_stream(stream: TextIO) -> Iterator[Read]:
    """Yield reads from an open FASTQ text stream."""
    while True:
        header = stream.readline()
        if not header:
            return
        header = header.rstrip("\n")
        if not header:
            continue
        if not header.startswith("@"):
            raise FastqError(f"expected '@' header line, got {header[:20]!r}")
        bases = stream.readline().rstrip("\n")
        plus = stream.readline().rstrip("\n")
        quality = stream.readline().rstrip("\n")
        if not plus.startswith("+"):
            raise FastqError(f"expected '+' separator, got {plus[:20]!r}")
        if len(quality) != len(bases):
            raise FastqError(
                f"quality length {len(quality)} != sequence length "
                f"{len(bases)} for read {header[1:]!r}")
        yield Read.from_text(bases, quality or None, header=header[1:])


def parse(text: str) -> ReadSet:
    """Parse a FASTQ string into a :class:`ReadSet`."""
    return ReadSet(list(parse_stream(io.StringIO(text))))


def read_file(path: str | Path) -> ReadSet:
    """Read a FASTQ file from disk."""
    with open(path, "r", encoding="ascii") as handle:
        reads = list(parse_stream(handle))
    return ReadSet(reads, name=Path(path).stem)


# sage-lint: disable-next=SGL003 - block_reads is the parser's batching unit, not an engine knob here
def iter_read_sets(path: str | Path,
                   block_reads: int) -> Iterator[ReadSet]:
    """Stream a FASTQ file as :class:`ReadSet` chunks of ``block_reads``.

    Never materializes the full dataset: at most one chunk of reads is
    held in memory.  This is the input contract of the block-based
    compression engine (:class:`repro.core.blocks.BlockCompressor`) —
    each yielded chunk becomes one independently decodable block.
    """
    with open(path, "r", encoding="ascii") as handle:
        yield from partition_reads(parse_stream(handle), block_reads,
                                   name=Path(path).stem)


def format_read(read: Read, index: int = 0) -> str:
    """Render one read as a FASTQ record."""
    header = read.header or f"read{index}"
    if read.quality is not None:
        qual = read.quality_text
    else:
        # Placeholder qualities for quality-less reads, as accurate
        # sequencers that skip quality reporting do (§5.1).
        qual = "I" * len(read)
    return f"@{header}\n{read.text}\n+\n{qual}\n"


def write(read_set: ReadSet) -> str:
    """Render a read set as FASTQ text."""
    parts = [format_read(r, i) for i, r in enumerate(read_set)]
    return "".join(parts)


def write_file(read_set: ReadSet, path: str | Path) -> None:
    """Write a read set to a FASTQ file."""
    with open(path, "w", encoding="ascii") as handle:
        for i, read in enumerate(read_set):
            handle.write(format_read(read, i))
