"""Synthetic analogs of the paper's evaluated read sets RS1-RS5 (Table 2).

The real datasets are multi-gigabyte SRA accessions; we generate scaled
synthetic analogs whose compression-relevant knobs (read length, depth,
error profile, variant density, chimera rate, quality-score alphabet) are
tuned so the *relative* behaviour matches the paper: RS2 compresses best,
RS4 worst, short sets are substitution-dominated, long sets indel- and
chimera-heavy.  Paper-reported values ride along in
:class:`DatasetSpec.paper` so benchmarks can print paper-vs-measured rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .simulator import (QualityModel, ReadSimulator, SimulationProfile,
                        SimulationResult, long_read_profile,
                        short_read_profile)


@dataclass(frozen=True)
class PaperNumbers:
    """Values reported for the real dataset in the paper (Table 2)."""

    accession: str
    uncompressed_mb: float
    pigz_dna: float
    pigz_qual: float
    spring_dna: float
    spring_qual: float
    sage_dna: float
    sage_qual: float


@dataclass
class DatasetSpec:
    """Recipe for one synthetic read-set analog."""

    label: str
    kind: str                      # 'short' | 'long'
    profile: SimulationProfile
    depth: float                   # mean sequencing coverage
    genome_scale: float            # genome length relative to base size
    paper: PaperNumbers
    isf_filter_fraction: float     # GenStore in-storage filter hit rate

    def generate(self, base_genome: int = 50_000,
                 seed: int = 0) -> SimulationResult:
        """Materialize the analog at a given scale, deterministically."""
        rng = np.random.default_rng(seed + _STABLE_SEEDS[self.label])
        genome_len = int(base_genome * self.genome_scale)
        mean_len = self.profile.read_length
        n_reads = max(1, int(self.depth * genome_len / mean_len))
        sim = ReadSimulator(self.profile, rng)
        return sim.simulate(genome_len, n_reads, name=self.label)


_STABLE_SEEDS = {"RS1": 101, "RS2": 102, "RS3": 103, "RS4": 104, "RS5": 105}


def _rs1() -> DatasetSpec:
    # SRR870667_2: Theobroma cacao short reads; moderate compressibility.
    profile = short_read_profile(
        read_length=100, sub_rate=0.002, snp_rate=0.002,
        quality=QualityModel.illumina_legacy())
    return DatasetSpec(
        label="RS1", kind="short", profile=profile, depth=7.0,
        genome_scale=1.0,
        paper=PaperNumbers("SRR870667_2", 10_000, 3.39, 2.23,
                           24.8, 2.80, 22.8, 2.80),
        isf_filter_fraction=0.55)


def _rs2() -> DatasetSpec:
    # ERR194146_1: deep human short reads; best-case compressibility.
    profile = short_read_profile(
        read_length=100, sub_rate=0.0008, snp_rate=0.001,
        quality=QualityModel.illumina_binned())
    return DatasetSpec(
        label="RS2", kind="short", profile=profile, depth=14.0,
        genome_scale=1.6,
        paper=PaperNumbers("ERR194146_1", 158_000, 12.5, 2.49,
                           40.2, 3.4, 36.8, 3.4),
        isf_filter_fraction=0.80)


def _rs3() -> DatasetSpec:
    # SRR2052419_1: shallow human short reads; consensus overhead bites.
    profile = short_read_profile(
        read_length=100, sub_rate=0.003, snp_rate=0.0025,
        quality=QualityModel.illumina_binned())
    return DatasetSpec(
        label="RS3", kind="short", profile=profile, depth=1.8,
        genome_scale=1.0,
        paper=PaperNumbers("SRR2052419_1", 8_000, 3.41, 3.45,
                           7.2, 5.07, 7.1, 5.07),
        isf_filter_fraction=0.55)


def _rs4() -> DatasetSpec:
    # PAO89685_sampled: human ONT long reads; error- and chimera-heavy.
    profile = long_read_profile(
        read_length=2500, sub_rate=0.016, ins_rate=0.010, del_rate=0.010,
        chimera_rate=0.12, snp_rate=0.001)
    return DatasetSpec(
        label="RS4", kind="long", profile=profile, depth=4.5,
        genome_scale=1.2,
        paper=PaperNumbers("PAO89685_sampled", 24_000, 3.93, 1.79,
                           4.8, 2.19, 4.5, 2.19),
        isf_filter_fraction=0.05)


def _rs5() -> DatasetSpec:
    # ERR5455028: banana nanopore long reads; cleaner long-read chemistry.
    profile = long_read_profile(
        read_length=3000, sub_rate=0.008, ins_rate=0.005, del_rate=0.005,
        chimera_rate=0.08, snp_rate=0.0015)
    return DatasetSpec(
        label="RS5", kind="long", profile=profile, depth=6.0,
        genome_scale=1.5,
        paper=PaperNumbers("ERR5455028", 176_800, 3.5, 1.57,
                           7.6, 1.82, 7.8, 1.82),
        isf_filter_fraction=0.45)


def dataset_specs() -> dict[str, DatasetSpec]:
    """All five analog specs, keyed by label."""
    return {s.label: s for s in (_rs1(), _rs2(), _rs3(), _rs4(), _rs5())}


def get_spec(label: str) -> DatasetSpec:
    """Look up one spec by label (``'RS1'`` .. ``'RS5'``)."""
    specs = dataset_specs()
    if label not in specs:
        raise KeyError(f"unknown dataset {label!r}; have {sorted(specs)}")
    return specs[label]


def generate(label: str, base_genome: int = 50_000,
             seed: int = 0) -> SimulationResult:
    """Generate one analog read set by label."""
    return get_spec(label).generate(base_genome=base_genome, seed=seed)
