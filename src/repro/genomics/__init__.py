"""Genomic data substrate: sequences, reads, FASTQ, simulation, datasets."""

from . import datasets, fastq, reference, sequence, simulator
from .reads import Read, ReadSet
from .reference import DonorGenome, Variant, make_donor, make_reference
from .simulator import (QualityModel, ReadSimulator, ReadTruth,
                        SimulationProfile, SimulationResult,
                        long_read_profile, short_read_profile)

__all__ = [
    "datasets", "fastq", "reference", "sequence", "simulator",
    "Read", "ReadSet", "DonorGenome", "Variant", "make_donor",
    "make_reference", "QualityModel", "ReadSimulator", "ReadTruth",
    "SimulationProfile", "SimulationResult", "long_read_profile",
    "short_read_profile",
]
