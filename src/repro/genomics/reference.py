"""Reference and donor genome generation.

Compression-relevant genomic structure comes from two layers (§5.1 of the
paper): a *reference* genome (the consensus the compressor aligns against)
and a *donor* genome (the organism actually sequenced), which differs from
the reference by genetic variants.  Variants cluster spatially (Property 1:
"genetic mutations tend to cluster in some regions of the genome"), which
is what makes delta-encoded mismatch positions small.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import sequence as seq


@dataclass
class Variant:
    """A single germline variant applied to the reference."""

    position: int           # reference coordinate
    kind: str               # 'sub' | 'ins' | 'del'
    bases: np.ndarray       # substituted/inserted bases (empty for del)
    length: int = 1         # deleted length for 'del'


@dataclass
class DonorGenome:
    """A donor genome plus the variants that produced it."""

    reference: np.ndarray
    sequence: np.ndarray
    variants: list[Variant] = field(default_factory=list)

    @property
    def variant_density(self) -> float:
        """Variants per reference base."""
        if self.reference.size == 0:
            return 0.0
        return len(self.variants) / self.reference.size


def make_reference(length: int, rng: np.random.Generator,
                   gc_content: float = 0.42) -> np.ndarray:
    """Generate a reference genome of A/C/G/T codes.

    The default GC content matches the human-genome ballpark (~41%).
    """
    return seq.random_sequence(length, rng, gc_content=gc_content)


def _clustered_positions(genome_len: int, count: int,
                         rng: np.random.Generator,
                         cluster_fraction: float = 0.6,
                         n_clusters: int | None = None,
                         cluster_span: int = 400) -> np.ndarray:
    """Draw variant positions from a uniform + clustered mixture.

    A fraction of positions land inside a small number of hotspot windows
    (transposable-element / hypermutable regions); the rest are uniform.
    """
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    if n_clusters is None:
        n_clusters = max(1, genome_len // 5000)
    n_clustered = int(round(count * cluster_fraction))
    n_uniform = count - n_clustered
    uniform = rng.integers(0, genome_len, size=n_uniform)
    centers = rng.integers(0, genome_len, size=n_clusters)
    chosen = rng.choice(centers, size=n_clustered)
    offsets = rng.integers(-cluster_span // 2, cluster_span // 2 + 1,
                           size=n_clustered)
    clustered = np.clip(chosen + offsets, 0, genome_len - 1)
    positions = np.concatenate([uniform, clustered])
    return np.unique(positions)


def make_donor(reference: np.ndarray, rng: np.random.Generator,
               snp_rate: float = 0.001, indel_rate: float = 0.0001,
               max_indel: int = 8,
               cluster_fraction: float = 0.6) -> DonorGenome:
    """Derive a donor genome from a reference by applying variants.

    ``snp_rate`` / ``indel_rate`` are per-base probabilities; variant
    positions follow the clustered spatial model (Property 1).
    """
    glen = int(reference.size)
    n_snps = rng.binomial(glen, snp_rate) if glen else 0
    n_indels = rng.binomial(glen, indel_rate) if glen else 0

    snp_pos = _clustered_positions(glen, n_snps, rng, cluster_fraction)
    indel_pos = _clustered_positions(glen, n_indels, rng, cluster_fraction)
    indel_pos = np.setdiff1d(indel_pos, snp_pos)

    variants: list[Variant] = []
    for pos in snp_pos:
        old = reference[pos]
        new = (old + rng.integers(1, 4)) % 4
        variants.append(Variant(int(pos), "sub",
                                np.array([new], dtype=np.uint8)))
    for pos in indel_pos:
        length = int(rng.integers(1, max_indel + 1))
        if rng.random() < 0.5:
            bases = seq.random_sequence(length, rng)
            variants.append(Variant(int(pos), "ins", bases))
        else:
            length = min(length, glen - int(pos))
            if length > 0:
                variants.append(Variant(int(pos), "del",
                                        np.empty(0, dtype=np.uint8), length))

    variants.sort(key=lambda v: v.position)
    donor = apply_variants(reference, variants)
    return DonorGenome(reference=reference, sequence=donor, variants=variants)


def apply_variants(reference: np.ndarray,
                   variants: list[Variant]) -> np.ndarray:
    """Materialize a donor sequence by applying sorted variants."""
    pieces: list[np.ndarray] = []
    cursor = 0
    for var in variants:
        if var.position < cursor:
            continue  # overlapping a previous deletion; skip
        pieces.append(reference[cursor:var.position])
        if var.kind == "sub":
            pieces.append(var.bases)
            cursor = var.position + 1
        elif var.kind == "ins":
            pieces.append(var.bases)
            pieces.append(reference[var.position:var.position + 1])
            cursor = var.position + 1
        elif var.kind == "del":
            cursor = var.position + var.length
        else:
            raise ValueError(f"unknown variant kind {var.kind!r}")
    pieces.append(reference[cursor:])
    if not pieces:
        return reference.copy()
    return np.concatenate(pieces).astype(np.uint8)
