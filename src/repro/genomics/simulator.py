"""Read simulator.

Generates synthetic read sets whose *compression-relevant statistics* match
the properties the paper measures on real data (§5.1):

- **Property 1** — mismatches cluster: variants cluster in the donor
  (``reference.make_donor``) and sequencing errors burst in regionally
  degraded windows.
- **Property 2** — most short reads have zero or few mismatches: short-read
  error rates are ~0.1%.
- **Property 3** — indel blocks are mostly length 1, but long blocks hold
  most indel bases: block lengths follow a 1-heavy mixture with a heavy tail.
- **Property 4** — chimeric reads join segments from distant loci.
- **Property 5** — substitutions dominate short-read errors.
- **Property 6** — reads redundantly sample the genome (sequencing depth),
  so sorted matching positions have tiny deltas.

Each simulated read records its ground truth (:class:`ReadTruth`) so mapper
and compressor tests can check against the generative model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import sequence as seq
from .reads import MAX_PHRED, Read, ReadSet
from .reference import DonorGenome, make_donor, make_reference


@dataclass
class SegmentTruth:
    """Ground truth for one mapped segment of a read."""

    donor_start: int
    length: int


@dataclass
class ReadTruth:
    """Ground truth for one simulated read."""

    segments: list[SegmentTruth]
    reverse: bool
    is_chimeric: bool
    n_errors: int
    has_n: bool = False
    clip_start: int = 0
    clip_end: int = 0


@dataclass
class QualityModel:
    """Distribution of quality scores and their coupling to errors.

    ``levels``/``weights`` give the marginal distribution for correct
    bases; erroneous bases draw from the lowest levels.  Short-read
    platforms bin qualities into few levels (RTA3-style); long-read
    platforms emit a wide, noisy range.
    """

    levels: np.ndarray
    weights: np.ndarray
    error_levels: np.ndarray

    @classmethod
    def illumina_binned(cls) -> "QualityModel":
        return cls(levels=np.array([37, 23, 12, 2], dtype=np.uint8),
                   weights=np.array([0.70, 0.17, 0.09, 0.04]),
                   error_levels=np.array([2, 12], dtype=np.uint8))

    @classmethod
    def illumina_legacy(cls) -> "QualityModel":
        """Older instrument: ~40 distinct values, mild skew (low CR)."""
        levels = np.arange(2, 42, dtype=np.uint8)
        raw = np.exp(0.06 * np.arange(40.0))
        return cls(levels=levels, weights=raw / raw.sum(),
                   error_levels=np.array([2, 3, 4], dtype=np.uint8))

    @classmethod
    def nanopore(cls) -> "QualityModel":
        """Long-read model: wide alphabet, near-flat (CR ~1.8-2.2)."""
        levels = np.arange(3, 31, dtype=np.uint8)
        raw = np.exp(-0.5 * ((np.arange(28.0) - 14.0) / 8.0) ** 2)
        return cls(levels=levels, weights=raw / raw.sum(),
                   error_levels=np.arange(3, 8, dtype=np.uint8))

    def sample(self, length: int, error_mask: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        qual = rng.choice(self.levels, size=length, p=self.weights)
        n_err = int(error_mask.sum())
        if n_err:
            qual[error_mask] = rng.choice(self.error_levels, size=n_err)
        return np.minimum(qual, MAX_PHRED).astype(np.uint8)


@dataclass
class SimulationProfile:
    """Knobs describing a sequencing technology + experiment."""

    name: str = "short"
    # Read geometry
    read_length: int = 100          # fixed length (short reads)
    length_sigma: float = 0.0       # >0 => variable (log-normal) lengths
    min_length: int = 50
    max_length: int = 100_000
    # Error model
    sub_rate: float = 0.001
    ins_rate: float = 0.0001
    del_rate: float = 0.0001
    burst_rate: float = 0.0         # probability a read has a degraded window
    burst_error_rate: float = 0.05  # error rate inside the degraded window
    burst_span: int = 40
    # Indel block length mixture (Property 3)
    indel_block_single: float = 0.75   # P(block length == 1)
    indel_block_geom_p: float = 0.45   # geometric tail for short blocks
    indel_block_long_frac: float = 0.04  # heavy tail of long blocks
    indel_block_long_max: int = 120
    # Structural effects
    chimera_rate: float = 0.0
    chimera_segments: tuple[int, int] = (2, 3)
    n_rate: float = 0.0005          # per-read probability of containing Ns
    n_run_max: int = 3
    clip_rate: float = 0.0          # per-read probability of soft clips
    clip_max: int = 30
    reverse_fraction: float = 0.5
    # Donor variation
    snp_rate: float = 0.001
    indel_variant_rate: float = 0.0001
    # Quality
    quality: QualityModel = field(default_factory=QualityModel.illumina_binned)
    with_quality: bool = True

    @property
    def is_long_read(self) -> bool:
        return self.length_sigma > 0.0


def short_read_profile(**overrides) -> SimulationProfile:
    """Illumina-class profile: fixed length, ~0.1% substitution errors."""
    profile = SimulationProfile(
        name="short", read_length=100, sub_rate=0.001,
        ins_rate=0.00005, del_rate=0.00005,
        chimera_rate=0.0, clip_rate=0.002,
        quality=QualityModel.illumina_binned())
    for key, value in overrides.items():
        setattr(profile, key, value)
    return profile


def long_read_profile(**overrides) -> SimulationProfile:
    """Nanopore-class profile: variable length, ~1-5% indel-heavy errors."""
    profile = SimulationProfile(
        name="long", read_length=3000, length_sigma=0.45,
        min_length=500, max_length=25_000,
        sub_rate=0.010, ins_rate=0.006, del_rate=0.006,
        burst_rate=0.15, burst_error_rate=0.08, burst_span=120,
        chimera_rate=0.10, n_rate=0.002, clip_rate=0.01,
        quality=QualityModel.nanopore())
    for key, value in overrides.items():
        setattr(profile, key, value)
    return profile


@dataclass
class SimulationResult:
    """A simulated read set plus its generative ground truth."""

    read_set: ReadSet
    truth: list[ReadTruth]
    donor: DonorGenome

    @property
    def reference(self) -> np.ndarray:
        return self.donor.reference


class ReadSimulator:
    """Samples reads from a donor genome under a :class:`SimulationProfile`."""

    def __init__(self, profile: SimulationProfile,
                 rng: np.random.Generator | None = None):
        self.profile = profile
        self.rng = rng or np.random.default_rng()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def simulate(self, genome_length: int, n_reads: int,
                 name: str = "") -> SimulationResult:
        """Generate a fresh reference + donor and sample reads from it."""
        reference = make_reference(genome_length, self.rng)
        donor = make_donor(reference, self.rng,
                           snp_rate=self.profile.snp_rate,
                           indel_rate=self.profile.indel_variant_rate)
        return self.simulate_from_donor(donor, n_reads, name=name)

    def simulate_from_donor(self, donor: DonorGenome, n_reads: int,
                            name: str = "") -> SimulationResult:
        """Sample ``n_reads`` reads from an existing donor genome."""
        reads: list[Read] = []
        truths: list[ReadTruth] = []
        for i in range(n_reads):
            read, truth = self._one_read(donor.sequence, i)
            reads.append(read)
            truths.append(truth)
        read_set = ReadSet(reads, name=name or self.profile.name)
        return SimulationResult(read_set=read_set, truth=truths, donor=donor)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _draw_length(self) -> int:
        p = self.profile
        if not p.is_long_read:
            return p.read_length
        length = int(self.rng.lognormal(np.log(p.read_length), p.length_sigma))
        return int(np.clip(length, p.min_length, p.max_length))

    def _draw_fragment(self, donor: np.ndarray,
                       length: int) -> tuple[np.ndarray, int]:
        max_start = max(1, donor.size - length)
        start = int(self.rng.integers(0, max_start))
        frag = donor[start:start + length]
        return frag.copy(), start

    def _indel_block_length(self) -> int:
        p = self.profile
        roll = self.rng.random()
        if roll < p.indel_block_single:
            return 1
        if roll < p.indel_block_single + p.indel_block_long_frac:
            return int(self.rng.integers(10, p.indel_block_long_max + 1))
        return 2 + int(self.rng.geometric(p.indel_block_geom_p))

    def _apply_errors(self, frag: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Introduce sequencing errors; returns (read codes, error mask)."""
        p = self.profile
        rng = self.rng
        length = frag.size

        sub_rate = np.full(length, p.sub_rate)
        indel_rate = np.full(length, p.ins_rate + p.del_rate)
        if p.burst_rate > 0 and rng.random() < p.burst_rate and length > 10:
            start = int(rng.integers(0, max(1, length - p.burst_span)))
            stop = min(length, start + p.burst_span)
            sub_rate[start:stop] += p.burst_error_rate * 0.6
            indel_rate[start:stop] += p.burst_error_rate * 0.4

        out: list[np.ndarray] = []
        err: list[np.ndarray] = []
        cursor = 0
        while cursor < length:
            base = frag[cursor]
            roll = rng.random()
            if roll < sub_rate[cursor]:
                new = (base + rng.integers(1, 4)) % 4
                out.append(np.array([new], dtype=np.uint8))
                err.append(np.array([True]))
                cursor += 1
            elif roll < sub_rate[cursor] + indel_rate[cursor]:
                block = self._indel_block_length()
                if rng.random() < p.ins_rate / max(p.ins_rate + p.del_rate,
                                                   1e-12):
                    ins = seq.random_sequence(block, rng)
                    out.append(ins)
                    err.append(np.ones(block, dtype=bool))
                    out.append(np.array([base], dtype=np.uint8))
                    err.append(np.array([False]))
                    cursor += 1
                else:
                    cursor += block  # deletion: skip donor bases
            else:
                out.append(np.array([base], dtype=np.uint8))
                err.append(np.array([False]))
                cursor += 1
        if not out:
            return np.empty(0, dtype=np.uint8), np.empty(0, dtype=bool)
        return np.concatenate(out), np.concatenate(err)

    def _fixed_length_read(self, donor: np.ndarray) -> tuple[
            np.ndarray, np.ndarray, np.ndarray, np.ndarray, SegmentTruth,
            int, int]:
        """Short-read path: the instrument emits exactly ``read_length``
        cycles, so clips and indel errors never change the total length."""
        p = self.profile
        rng = self.rng
        total = p.read_length
        clip_s_len = clip_e_len = 0
        if p.clip_rate > 0 and rng.random() < p.clip_rate:
            clip_s_len = int(rng.integers(5, min(p.clip_max, total // 3) + 1))
            if rng.random() < 0.5:
                clip_e_len = int(rng.integers(
                    5, min(p.clip_max, total // 3) + 1))
        core_target = total - clip_s_len - clip_e_len

        margin = 0 if (p.sub_rate + p.ins_rate + p.del_rate) == 0 else 16
        while True:
            frag, start = self._draw_fragment(donor, core_target + margin)
            codes, error_mask = self._apply_errors(frag)
            if codes.size >= core_target:
                break
            margin += 32  # heavy deletions; retry with a longer fragment
        codes = codes[:core_target]
        error_mask = error_mask[:core_target]
        clip_s = seq.random_sequence(clip_s_len, rng)
        clip_e = seq.random_sequence(clip_e_len, rng)
        truth_segment = SegmentTruth(start, core_target)
        return codes, error_mask, clip_s, clip_e, truth_segment, \
            clip_s_len, clip_e_len

    def _one_fixed_read(self, donor: np.ndarray,
                        index: int) -> tuple[Read, ReadTruth]:
        p = self.profile
        rng = self.rng
        codes, error_mask, clip_s, clip_e, segment, cs_len, ce_len = \
            self._fixed_length_read(donor)

        has_n = False
        if p.n_rate > 0 and rng.random() < p.n_rate and codes.size > 4:
            run = int(rng.integers(1, p.n_run_max + 1))
            pos = int(rng.integers(0, codes.size - run))
            codes[pos:pos + run] = seq.N_CODE
            error_mask[pos:pos + run] = True
            has_n = True

        codes = np.concatenate([clip_s, codes, clip_e])
        error_mask = np.concatenate(
            [np.zeros(cs_len, dtype=bool), error_mask,
             np.zeros(ce_len, dtype=bool)])

        reverse = rng.random() < p.reverse_fraction
        if reverse:
            codes = seq.reverse_complement(codes)
            error_mask = error_mask[::-1].copy()

        quality = None
        if p.with_quality:
            quality = p.quality.sample(codes.size, error_mask, rng)

        read = Read(codes=codes, quality=quality, header=f"sim.{index}")
        truth = ReadTruth(segments=[segment], reverse=reverse,
                          is_chimeric=False,
                          n_errors=int(error_mask.sum()), has_n=has_n,
                          clip_start=cs_len, clip_end=ce_len)
        return read, truth

    def _one_read(self, donor: np.ndarray, index: int) -> tuple[Read, ReadTruth]:
        p = self.profile
        rng = self.rng
        if not p.is_long_read:
            return self._one_fixed_read(donor, index)
        length = self._draw_length()

        segments: list[SegmentTruth] = []
        is_chimeric = (p.chimera_rate > 0 and rng.random() < p.chimera_rate
                       and length >= 4 * p.min_length)
        if is_chimeric:
            n_seg = int(rng.integers(p.chimera_segments[0],
                                     p.chimera_segments[1] + 1))
            cuts = np.sort(rng.choice(
                np.arange(1, max(2, length)), size=n_seg - 1, replace=False))
            seg_lens = np.diff(np.concatenate([[0], cuts, [length]]))
            parts = []
            for seg_len in seg_lens:
                frag, start = self._draw_fragment(donor, int(seg_len))
                parts.append(frag)
                segments.append(SegmentTruth(start, int(frag.size)))
            fragment = np.concatenate(parts)
        else:
            fragment, start = self._draw_fragment(donor, length)
            segments.append(SegmentTruth(start, int(fragment.size)))

        codes, error_mask = self._apply_errors(fragment)

        # N bases: short runs of ambiguity.
        has_n = False
        if p.n_rate > 0 and rng.random() < p.n_rate and codes.size > 4:
            run = int(rng.integers(1, p.n_run_max + 1))
            pos = int(rng.integers(0, codes.size - run))
            codes[pos:pos + run] = seq.N_CODE
            error_mask[pos:pos + run] = True
            has_n = True

        # Soft clips: adapter-like random sequence at the ends.
        clip_start = clip_end = 0
        if p.clip_rate > 0 and rng.random() < p.clip_rate:
            clip_start = int(rng.integers(5, p.clip_max + 1))
            head = seq.random_sequence(clip_start, rng)
            codes = np.concatenate([head, codes])
            error_mask = np.concatenate(
                [np.zeros(clip_start, dtype=bool), error_mask])
            if rng.random() < 0.5:
                clip_end = int(rng.integers(5, p.clip_max + 1))
                tail = seq.random_sequence(clip_end, rng)
                codes = np.concatenate([codes, tail])
                error_mask = np.concatenate(
                    [error_mask, np.zeros(clip_end, dtype=bool)])

        reverse = rng.random() < p.reverse_fraction
        if reverse:
            codes = seq.reverse_complement(codes)
            error_mask = error_mask[::-1].copy()

        quality = None
        if p.with_quality:
            quality = p.quality.sample(codes.size, error_mask, rng)

        read = Read(codes=codes, quality=quality, header=f"sim.{index}")
        truth = ReadTruth(segments=segments, reverse=reverse,
                          is_chimeric=is_chimeric,
                          n_errors=int(error_mask.sum()), has_n=has_n,
                          clip_start=clip_start, clip_end=clip_end)
        return read, truth
