"""Read and read-set containers.

A :class:`Read` is one sequenced fragment: DNA codes, optional quality
scores, and a header.  A :class:`ReadSet` is the unit of compression and
analysis throughout the library (the paper's "read set").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from . import sequence as seq

#: Phred+33 offset used for quality score characters.
PHRED_OFFSET = 33

#: Highest representable Phred score (Illumina-style cap).
MAX_PHRED = 60


@dataclass
class Read:
    """A single sequencing read."""

    codes: np.ndarray
    quality: np.ndarray | None = None
    header: str = ""

    def __post_init__(self) -> None:
        self.codes = np.asarray(self.codes, dtype=np.uint8)
        if self.quality is not None:
            self.quality = np.asarray(self.quality, dtype=np.uint8)
            if self.quality.shape != self.codes.shape:
                raise ValueError("quality length must match sequence length")

    def __len__(self) -> int:
        return int(self.codes.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Read):
            return NotImplemented
        if not np.array_equal(self.codes, other.codes):
            return False
        if (self.quality is None) != (other.quality is None):
            return False
        if self.quality is not None and not np.array_equal(
                self.quality, other.quality):
            return False
        return True

    @property
    def text(self) -> str:
        """The read's bases as an upper-case string."""
        return seq.decode(self.codes)

    @property
    def quality_text(self) -> str:
        """The read's quality scores as a Phred+33 string."""
        if self.quality is None:
            raise ValueError("read has no quality scores")
        return (self.quality + PHRED_OFFSET).tobytes().decode("ascii")

    @classmethod
    def from_text(cls, bases: str, quality: str | None = None,
                  header: str = "") -> "Read":
        """Build a read from a base string and optional Phred+33 string."""
        codes = seq.encode(bases)
        qual = None
        if quality is not None:
            raw = np.frombuffer(quality.encode("ascii"), dtype=np.uint8)
            if (raw < PHRED_OFFSET).any():
                raise ValueError("quality string has characters below '!'")
            qual = (raw - PHRED_OFFSET).astype(np.uint8)
        return cls(codes=codes, quality=qual, header=header)

    def reverse_complement(self) -> "Read":
        """Reverse-complemented copy (quality reversed alongside)."""
        qual = None if self.quality is None else self.quality[::-1].copy()
        return Read(seq.reverse_complement(self.codes), qual, self.header)


@dataclass
class ReadSet:
    """An ordered collection of reads — the unit of (de)compression."""

    reads: list[Read] = field(default_factory=list)
    name: str = ""

    def __len__(self) -> int:
        return len(self.reads)

    def __iter__(self) -> Iterator[Read]:
        return iter(self.reads)

    def __getitem__(self, idx: int) -> Read:
        return self.reads[idx]

    def append(self, read: Read) -> None:
        self.reads.append(read)

    def extend(self, reads: Iterable[Read]) -> None:
        self.reads.extend(reads)

    @property
    def has_quality(self) -> bool:
        """True when every read carries quality scores."""
        return bool(self.reads) and all(
            r.quality is not None for r in self.reads)

    @property
    def total_bases(self) -> int:
        """Total number of bases across all reads."""
        return sum(len(r) for r in self.reads)

    @property
    def is_fixed_length(self) -> bool:
        """True when all reads share one length (typical short-read sets)."""
        if not self.reads:
            return True
        first = len(self.reads[0])
        return all(len(r) == first for r in self.reads)

    def read_lengths(self) -> np.ndarray:
        """Array of per-read lengths."""
        return np.array([len(r) for r in self.reads], dtype=np.int64)

    def uncompressed_dna_bytes(self) -> int:
        """Size of the DNA payload stored as 1 ASCII byte per base."""
        return self.total_bases

    def uncompressed_fastq_bytes(self) -> int:
        """Approximate FASTQ size: header + bases + separator + qualities."""
        total = 0
        for read in self.reads:
            header_len = len(read.header) + 1 if read.header else 2
            total += header_len + 1  # '@' + header + newline
            total += len(read) + 1
            total += 2  # '+' line
            total += len(read) + 1
        return total

    def subset(self, indices: Iterable[int]) -> "ReadSet":
        """New read set containing the selected reads (shared arrays)."""
        picked = [self.reads[i] for i in indices]
        return ReadSet(picked, name=self.name)


def iter_reads(reads: ReadSet | Iterable[ReadSet]) -> Iterator[Read]:
    """Flatten a materialized read set or a stream of read-set blocks.

    The shared dispatch rule of the streaming analysis entry points
    (:func:`repro.analysis.properties.analyze`,
    :func:`repro.analysis.variants.pileup`): a :class:`ReadSet` yields
    its own reads; any other iterable is treated as blocks of reads —
    the shape produced by the streaming decoders'
    ``iter_block_read_sets``.
    """
    if isinstance(reads, ReadSet):
        yield from reads
    else:
        for block in reads:
            yield from block


# sage-lint: disable-next=SGL003 - block_reads is the partitioner's batching unit, not an engine knob here
def partition_reads(reads: Iterable[Read], block_reads: int,
                    name: str = "") -> Iterator[ReadSet]:
    """Chunk a read stream into :class:`ReadSet` blocks in input order.

    The shared chunker behind streaming FASTQ input
    (:func:`repro.genomics.fastq.iter_read_sets`) and the block-based
    compression engine (:class:`repro.core.blocks.BlockCompressor`):
    at most one ``block_reads``-sized chunk is held in memory.
    """
    if block_reads < 1:
        raise ValueError("block_reads must be >= 1")
    chunk: list[Read] = []
    for read in reads:
        chunk.append(read)
        if len(chunk) == block_reads:
            yield ReadSet(chunk, name=name)
            chunk = []
    if chunk:
        yield ReadSet(chunk, name=name)
