"""DNA sequence primitives: alphabet, numeric encoding, reverse complement.

Sequences are represented throughout the library as ``numpy`` arrays of
``uint8`` codes (``A=0, C=1, G=2, T=3, N=4``).  This keeps the hot paths
(alignment, array encoding, bit packing) vectorizable while still allowing
cheap conversion to and from Python strings at the API boundary.
"""

from __future__ import annotations

import numpy as np

#: Canonical DNA alphabet, in code order.
ALPHABET = "ACGTN"

#: Number of unambiguous bases (A, C, G, T).
N_BASES = 4

#: Numeric code of the ambiguous base ``N``.
N_CODE = 4

# Code table: ASCII byte -> code.  Lowercase is accepted and normalized.
_ENCODE_TABLE = np.full(256, 255, dtype=np.uint8)
for _i, _ch in enumerate(ALPHABET):
    _ENCODE_TABLE[ord(_ch)] = _i
    _ENCODE_TABLE[ord(_ch.lower())] = _i

_DECODE_TABLE = np.frombuffer(ALPHABET.encode("ascii"), dtype=np.uint8).copy()

# Complement of each code; N maps to itself.
COMPLEMENT = np.array([3, 2, 1, 0, 4], dtype=np.uint8)


class SequenceError(ValueError):
    """Raised when text cannot be interpreted as a DNA sequence."""


def encode(text: str | bytes) -> np.ndarray:
    """Encode a DNA string into a ``uint8`` code array.

    >>> encode("ACGTN").tolist()
    [0, 1, 2, 3, 4]
    """
    if isinstance(text, str):
        text = text.encode("ascii")
    raw = np.frombuffer(text, dtype=np.uint8)
    codes = _ENCODE_TABLE[raw]
    if codes.max(initial=0) == 255:
        bad = chr(int(raw[codes == 255][0]))
        raise SequenceError(f"invalid DNA character {bad!r}")
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a code array back into an upper-case DNA string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max() >= len(ALPHABET):
        raise SequenceError(f"invalid DNA code {int(codes.max())}")
    return _DECODE_TABLE[codes].tobytes().decode("ascii")


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Return the reverse complement of a code array (N stays N)."""
    codes = np.asarray(codes, dtype=np.uint8)
    return COMPLEMENT[codes[::-1]]


def contains_n(codes: np.ndarray) -> bool:
    """True if the sequence contains at least one ambiguous (N) base."""
    codes = np.asarray(codes, dtype=np.uint8)
    return bool((codes == N_CODE).any())


def random_sequence(length: int, rng: np.random.Generator,
                    gc_content: float = 0.5) -> np.ndarray:
    """Generate a random DNA sequence of A/C/G/T codes.

    ``gc_content`` sets the combined probability of G and C, split evenly;
    A and T share the remainder.
    """
    if not 0.0 <= gc_content <= 1.0:
        raise ValueError("gc_content must be within [0, 1]")
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    probs = [at, gc, gc, at]  # A, C, G, T
    return rng.choice(N_BASES, size=length, p=probs).astype(np.uint8)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Hamming distance between two equal-length code arrays."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError("sequences must have equal length")
    return int(np.count_nonzero(a != b))


def kmer_codes(codes: np.ndarray, k: int) -> np.ndarray:
    """Pack every k-mer of an A/C/G/T sequence into a ``uint64`` value.

    K-mers overlapping an N base are reported as ``2**(2k)`` (an
    out-of-range sentinel) so callers can mask them out.  ``k`` must be
    at most 31 so the packed value fits a ``uint64``.
    """
    if not 1 <= k <= 31:
        raise ValueError("k must be in [1, 31]")
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size - k + 1
    if n <= 0:
        return np.empty(0, dtype=np.uint64)
    vals = np.zeros(n, dtype=np.uint64)
    bad = np.zeros(n, dtype=bool)
    for off in range(k):
        window = codes[off:off + n]
        bad |= window == N_CODE
        vals = (vals << np.uint64(2)) | window.astype(np.uint64)
    sentinel = np.uint64(1) << np.uint64(2 * k)
    vals[bad] = sentinel
    return vals
